//! `ldp-client` — drive one collection round through a running
//! `ldp-server` and (optionally) verify the network estimate is
//! bit-identical to the in-process sequential `AggregationServer`.
//!
//! ```text
//! ldp-client --addr HOST:PORT [--tenant NAME] [--token TOKEN]
//!            [--fo grr|oue|olh|adaptive] [--epsilon E] [--domain D]
//!            [--reports N] [--seed S] [--chunk C] [--window W]
//!            [--check-inprocess]
//! ldp-client --addr HOST:PORT --stats [--scope TENANT]
//! ```
//!
//! Reports are generated deterministically from `--seed` (value drawn,
//! then perturbed, from one rng stream), submitted in chunks of
//! `--chunk`, and the closed round's estimate is printed. With
//! `--check-inprocess` the same response stream is replayed through an
//! in-process [`AggregationServer`] and the two estimates are compared
//! bit for bit; any mismatch exits non-zero.
//!
//! `--stats` instead scrapes the server's live metrics registry over
//! the wire (no tenant binding required) and prints every sample;
//! `--scope TENANT` restricts the scrape to one tenant's series.
//!
//! [`AggregationServer`]: ldp_ids::protocol::AggregationServer

use ldp_fo::{build_oracle, FoKind};
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{scrape_stats, ClientOptions, NetClient, NetError};
use ldp_obs::MetricValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: ldp-client --addr HOST:PORT [--tenant NAME] [--token TOKEN] [--fo KIND] \
         [--epsilon E] [--domain D] [--reports N] [--seed S] [--chunk C] [--window W] \
         [--check-inprocess]\n\
         \x20      ldp-client --addr HOST:PORT --stats [--scope TENANT]"
    );
    std::process::exit(2);
}

struct Opts {
    addr: String,
    tenant: String,
    token: Option<String>,
    fo: FoKind,
    epsilon: f64,
    domain: usize,
    reports: usize,
    seed: u64,
    chunk: usize,
    window: usize,
    check_inprocess: bool,
    stats: bool,
    scope: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: String::new(),
        tenant: "default".into(),
        token: None,
        fo: FoKind::Grr,
        epsilon: 1.0,
        domain: 16,
        reports: 100_000,
        seed: 42,
        chunk: 4096,
        window: ldp_net::DEFAULT_WINDOW,
        check_inprocess: false,
        stats: false,
        scope: None,
    };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
        let raw = args.next().unwrap_or_else(|| {
            eprintln!("ldp-client: {flag} needs a value");
            usage();
        });
        raw.parse().unwrap_or_else(|_| {
            eprintln!("ldp-client: bad value `{raw}` for {flag}");
            usage();
        })
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value(&mut args, "--addr"),
            "--tenant" => opts.tenant = value(&mut args, "--tenant"),
            "--token" => opts.token = Some(value(&mut args, "--token")),
            "--fo" => opts.fo = value(&mut args, "--fo"),
            "--epsilon" => opts.epsilon = value(&mut args, "--epsilon"),
            "--domain" => opts.domain = value(&mut args, "--domain"),
            "--reports" => opts.reports = value(&mut args, "--reports"),
            "--seed" => opts.seed = value(&mut args, "--seed"),
            "--chunk" => opts.chunk = value::<usize>(&mut args, "--chunk").max(1),
            "--window" => opts.window = value::<usize>(&mut args, "--window").max(1),
            "--check-inprocess" => opts.check_inprocess = true,
            "--stats" => opts.stats = true,
            "--scope" => opts.scope = Some(value(&mut args, "--scope")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ldp-client: unknown argument `{other}`");
                usage();
            }
        }
    }
    if opts.addr.is_empty() {
        eprintln!("ldp-client: --addr is required");
        usage();
    }
    opts
}

/// Render a `NetError` with its retry classification, so operators can
/// tell a "back off and retry" rejection from a fatal one at a glance.
fn describe(e: &NetError) -> String {
    let retryable = if e.retryable() {
        match e.retry_after() {
            Some(after) => format!("retryable, retry after {} ms", after.as_millis()),
            None => "retryable".into(),
        }
    } else {
        "not retryable".into()
    };
    format!("{e} [{retryable}]")
}

fn run(opts: &Opts) -> Result<(), String> {
    let oracle =
        build_oracle(opts.fo, opts.epsilon, opts.domain).map_err(|e| format!("oracle: {e}"))?;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut options = ClientOptions::default().window(opts.window);
    if let Some(token) = &opts.token {
        options = options.token(token.clone());
    }
    let mut client = NetClient::connect_with(opts.addr.clone(), opts.tenant.clone(), options)
        .map_err(|e| format!("connect {}: {}", opts.addr, describe(&e)))?;
    let request = client
        .open_round_with(0, opts.fo, opts.epsilon, opts.domain)
        .map_err(|e| format!("open round: {}", describe(&e)))?;

    // The sequential reference consumes the byte-for-byte same stream.
    let mut reference = opts.check_inprocess.then(|| {
        let mut server = AggregationServer::new();
        server.open_round(request.t, opts.fo, opts.epsilon, oracle.clone());
        server
    });

    let start = Instant::now();
    let mut sent = 0usize;
    while sent < opts.reports {
        let n = opts.chunk.min(opts.reports - sent);
        let batch: Vec<UserResponse> = (0..n)
            .map(|_| {
                let value = rng.gen_range(0..opts.domain);
                UserResponse::Report {
                    round: request.round,
                    report: oracle.perturb(value, &mut rng),
                }
            })
            .collect();
        if let Some(server) = reference.as_mut() {
            for response in &batch {
                server
                    .submit(response)
                    .map_err(|e| format!("reference: {e}"))?;
            }
        }
        client
            .submit_batch(batch)
            .map_err(|e| format!("submit at seq {}: {}", client.next_seq(), describe(&e)))?;
        sent += n;
    }
    let estimate = client
        .close_round()
        .map_err(|e| format!("close round: {}", describe(&e)))?;
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "round {} closed: {} reporters, {} cells, {:.0} reports/s",
        request.round,
        estimate.reporters,
        estimate.frequencies.len(),
        opts.reports as f64 / elapsed.max(1e-9),
    );
    let stats = client.stats();
    if stats.retries > 0 {
        println!(
            "retried {} times ({} reconnects, {} overloaded, {} timeouts, mean backoff {:.1} ms)",
            stats.retries,
            stats.reconnects,
            stats.overloaded,
            stats.timeouts,
            stats.mean_backoff_ms(),
        );
    }

    if let Some(server) = reference.as_mut() {
        let expected = server
            .close_round()
            .map_err(|e| format!("reference close: {e}"))?;
        if expected.reporters != estimate.reporters
            || expected.frequencies.len() != estimate.frequencies.len()
        {
            return Err(format!(
                "estimate shape mismatch: net {}x{}, in-process {}x{}",
                estimate.reporters,
                estimate.frequencies.len(),
                expected.reporters,
                expected.frequencies.len()
            ));
        }
        for (i, (net, local)) in estimate
            .frequencies
            .iter()
            .zip(&expected.frequencies)
            .enumerate()
        {
            if net.to_bits() != local.to_bits() {
                return Err(format!(
                    "estimate cell {i} differs: net {net} ({:#018x}) vs in-process {local} ({:#018x})",
                    net.to_bits(),
                    local.to_bits()
                ));
            }
        }
        println!("bit-identical to in-process AggregationServer: OK");
    }
    Ok(())
}

/// Scrape and print the server's live metrics registry.
fn run_stats(opts: &Opts) -> Result<(), String> {
    let (version, samples) = scrape_stats(
        &opts.addr,
        opts.scope.as_deref(),
        std::time::Duration::from_secs(10),
    )
    .map_err(|e| format!("stats scrape {}: {}", opts.addr, describe(&e)))?;
    println!("stats schema v{version}, {} samples", samples.len());
    for sample in &samples {
        let labels = if sample.labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = sample
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{{{}}}", pairs.join(","))
        };
        match &sample.value {
            MetricValue::Counter(v) => println!("{}{labels} {v}", sample.name),
            MetricValue::Gauge(v) => println!("{}{labels} {v}", sample.name),
            MetricValue::Histogram(h) => println!(
                "{}{labels} count={} p50={} p95={} p99={} max={}",
                sample.name,
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max,
            ),
        }
    }
    Ok(())
}

fn main() {
    let opts = parse_opts();
    let result = if opts.stats {
        run_stats(&opts)
    } else {
        run(&opts)
    };
    if let Err(e) = result {
        eprintln!("ldp-client: {e}");
        std::process::exit(1);
    }
}
