//! The frame envelope: length prefix + checksum around a payload.
//!
//! ```text
//! frame := [ payload_len : u32 LE ][ crc32(payload) : u32 LE ][ payload ]
//! ```
//!
//! The same envelope the WAL uses on disk, applied to the socket — one
//! framing discipline across the durability and network layers. All
//! decoding is pure and panic-free: [`decode_frame`] is the one-shot
//! function (typed [`FrameError`] on any defect, including
//! [`FrameError::Truncated`] for a short buffer), and [`FrameBuffer`]
//! wraps it incrementally for socket readers, where "truncated" just
//! means "feed me more bytes".

use crate::error::FrameError;
use crate::frame::Frame;
use ldp_service::codec::{crc32, put_u32};

/// Largest accepted frame payload: 16 MiB.
///
/// Generous for report batches (a 1k-report OUE batch over a 128-cell
/// domain is ~37 KiB) while bounding what one frame can make a peer
/// buffer.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Wrap one frame payload in the wire envelope.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.encode_payload();
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decode one frame from the front of `bytes`.
///
/// Returns the frame and the number of bytes it consumed. A buffer that
/// ends mid-frame is a typed [`FrameError::Truncated`] carrying how many
/// bytes the complete frame needs — never a panic.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::Truncated {
            needed: 8,
            have: bytes.len(),
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let total = 8 + len as usize;
    if bytes.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let expected = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let payload = &bytes[8..total];
    let got = crc32(payload);
    if got != expected {
        return Err(FrameError::Checksum { expected, got });
    }
    let frame = Frame::decode_payload(payload)?;
    Ok((frame, total))
}

/// An incremental frame decoder for socket readers.
///
/// [`feed`](Self::feed) whatever the socket produced — any split, down
/// to one byte at a time — then drain complete frames with
/// [`next`](Self::next). Partial frames simply wait for more bytes;
/// every other defect (oversize, checksum, version, malformed) is a
/// typed error, after which the stream is unsynchronized and the
/// connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the
        // buffer, so steady-state feeding stays O(bytes).
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match decode_frame(&self.buf[self.start..]) {
            Ok((frame, consumed)) => {
                self.start += consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            Err(FrameError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Discard all buffered bytes (used when reconnecting).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{AckBody, WireError, WIRE_VERSION};

    fn sample() -> Frame {
        Frame::Ack {
            corr: 42,
            body: AckBody::Submitted { next_seq: 7 },
        }
    }

    #[test]
    fn frame_roundtrips_through_envelope() {
        let frame = sample();
        let bytes = encode_frame(&frame);
        let (back, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn buffer_reassembles_byte_at_a_time() {
        let frames = vec![
            Frame::Hello {
                corr: 1,
                tenant: "acme".into(),
                resume: None,
                token: None,
            },
            Frame::Err {
                corr: 2,
                error: WireError::NoOpenRound,
            },
            sample(),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        for byte in wire {
            fb.feed(&[byte]);
            while let Some(f) = fb.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn truncated_is_need_more_not_error() {
        let bytes = encode_frame(&sample());
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
            let mut fb = FrameBuffer::new();
            fb.feed(&bytes[..cut]);
            assert_eq!(fb.next_frame().unwrap(), None);
        }
    }

    #[test]
    fn corrupt_crc_is_a_typed_error() {
        let mut bytes = encode_frame(&sample());
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Checksum { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_a_typed_error() {
        let mut bytes = encode_frame(&sample());
        bytes[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Oversize {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN
            })
        );
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let mut payload = sample().encode_payload();
        payload[0] = WIRE_VERSION + 9;
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Version {
                got: WIRE_VERSION + 9
            })
        );
    }
}
