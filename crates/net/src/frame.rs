//! Message-level payloads of the wire protocol.
//!
//! A [`Frame`] is one protocol message; [`Frame::encode_payload`] /
//! [`Frame::decode_payload`] convert it to/from the versioned payload
//! bytes that travel inside the length-prefixed, CRC-checksummed frame
//! envelope (see [`codec`](crate::codec)).
//!
//! ```text
//! payload := [ version : u8 = 1 ][ tag : u8 ][ body ]
//! ```
//!
//! The body reuses the service crate's little-endian codec primitives,
//! so a [`ReportRequest`], [`UserResponse`] or [`RoundEstimate`] has
//! **exactly one** binary form across the WAL and the wire — floats as
//! IEEE-754 bit patterns, which is what makes a network round's estimate
//! bit-identical to an in-process one.
//!
//! Every request carries a client-chosen correlation id (`corr`),
//! echoed verbatim in the matching `Ack`/`Err`, so clients can pipeline
//! requests and still pair responses.

use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{ReportRequest, UserResponse};
use ldp_ids::CoreError;
use ldp_obs::{HistogramSnapshot, MetricSample, MetricValue};
use ldp_service::codec::{
    put_estimate, put_request, put_response, put_str, put_u32, put_u64, take_estimate,
    take_request, take_response, Cursor,
};

use crate::error::FrameError;

/// The one wire version this implementation speaks.
pub const WIRE_VERSION: u8 = 1;

/// Version of the stats body carried by [`AckBody::Stats`], independent
/// of [`WIRE_VERSION`] so the metrics schema can evolve without a
/// protocol bump.
pub const STATS_VERSION: u8 = 1;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open (or resume) a tenant session. Must be the
    /// first frame on every connection.
    Hello {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// The tenant to attach to.
        tenant: String,
        /// `Some(session)` resumes an existing session after a
        /// disconnect; `None` creates a fresh one.
        resume: Option<u64>,
        /// The tenant's shared secret, when it requires one. Compared
        /// in constant time server-side; a missing or wrong token is a
        /// typed [`WireError::AuthFailed`].
        token: Option<String>,
    },
    /// Client → server: open collection round `request.round` (the
    /// idempotent [`open_round_at`](ldp_service::IngestService::open_round_at)).
    OpenRound {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// The session the round belongs to.
        session: u64,
        /// The full round request (round id, timestamp, oracle, ε,
        /// domain) — replaying it after a lost ack is a no-op.
        request: ReportRequest,
    },
    /// Client → server: one sequenced report delta (the idempotent
    /// [`submit_batch_at`](ldp_service::IngestService::submit_batch_at)).
    SubmitBatch {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// The session the delta belongs to.
        session: u64,
        /// The open round the responses target.
        round: u64,
        /// The session's write-ahead sequence number of this delta;
        /// replays deduplicate on it.
        seq: u64,
        /// The perturbed responses.
        responses: Vec<UserResponse>,
    },
    /// Client → server: close round `round` and return its estimate
    /// (the idempotent
    /// [`close_round_at`](ldp_service::IngestService::close_round_at)).
    CloseRound {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// The session the round belongs to.
        session: u64,
        /// The round to close; re-closing the last closed round returns
        /// the original estimate bit for bit.
        round: u64,
    },
    /// Client → server: scrape the server's metrics registry. Allowed
    /// before `Hello` (operators scrape without binding a tenant).
    StatsRequest {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// Restrict the reply to samples labelled `tenant="<scope>"`;
        /// `None` returns every sample.
        scope: Option<String>,
    },
    /// Server → client: the positive reply to one request.
    Ack {
        /// The request's correlation id.
        corr: u64,
        /// The request-specific result.
        body: AckBody,
    },
    /// Server → client: the typed rejection of one request.
    Err {
        /// The request's correlation id (0 when the failure is not
        /// attributable to a decoded request, e.g. a framing error).
        corr: u64,
        /// Why the request was rejected.
        error: WireError,
    },
}

/// The payload of an [`Frame::Ack`].
#[derive(Debug, Clone, PartialEq)]
pub enum AckBody {
    /// Reply to [`Frame::Hello`]: the attached session and its
    /// sequencing state (everything a resuming client needs).
    Session {
        /// The session's raw id.
        session: u64,
        /// The round id the next `OpenRound` must name.
        next_round: u64,
        /// The sequence number the next `SubmitBatch` must carry.
        next_seq: u64,
        /// The currently open round, if the session has one.
        open_round: Option<u64>,
    },
    /// Reply to [`Frame::OpenRound`]: the round request as the server
    /// recorded it.
    Opened {
        /// The acknowledged round request.
        request: ReportRequest,
    },
    /// Reply to [`Frame::SubmitBatch`]: the delta is durable (per the
    /// tenant's sync discipline) and folded.
    Submitted {
        /// The sequence number the server expects next — a resuming
        /// client trims its replay queue below this.
        next_seq: u64,
    },
    /// Reply to [`Frame::CloseRound`]: the round's estimate,
    /// bit-identical to an in-process close over the same reports.
    Closed {
        /// The round estimate.
        estimate: RoundEstimate,
    },
    /// Reply to [`Frame::StatsRequest`]: a snapshot of the server's
    /// metrics registry.
    Stats {
        /// The stats schema version the server speaks (see
        /// [`STATS_VERSION`]).
        version: u8,
        /// The captured samples, ordered by `(name, labels)`.
        samples: Vec<MetricSample>,
    },
}

/// A typed rejection travelling in an [`Frame::Err`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The connection spoke a wire version outside the served range.
    Version {
        /// Lowest version the server accepts.
        min: u8,
        /// Highest version the server accepts.
        max: u8,
        /// The version the client sent.
        got: u8,
    },
    /// The `Hello` named a tenant the registry does not host.
    UnknownTenant {
        /// The unknown tenant id.
        tenant: String,
    },
    /// The request referenced a session that was never created or has
    /// ended.
    UnknownSession {
        /// The unknown session's raw id.
        session: u64,
    },
    /// An operation requiring no open round arrived while one is open.
    SessionBusy {
        /// The busy session.
        session: u64,
        /// The round still open on it.
        round: u64,
    },
    /// The request named a round other than the one the session is at.
    StaleRound {
        /// The round the session expected.
        expected: u64,
        /// The round the request carried.
        got: u64,
    },
    /// A submit/close arrived with no collection round open.
    NoOpenRound,
    /// A submit skipped ahead of the session's write-ahead sequence.
    SequenceGap {
        /// The next sequence number the session accepts.
        expected: u64,
        /// The sequence number the submit carried.
        got: u64,
    },
    /// The ingest service failed internally (WAL I/O, invalid oracle
    /// parameters, …).
    Service {
        /// Human-readable failure description.
        detail: String,
    },
    /// The peer broke the conversation's protocol (frame before
    /// `Hello`, a server-only frame sent to the server, …).
    Protocol {
        /// What went out of step.
        detail: String,
    },
    /// The tenant shed this request under load (full dispatcher queue,
    /// exhausted rate budget, or in-flight quota). The request was
    /// **not** applied; retry it after backing off.
    Overloaded {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The `Hello` failed the tenant's shared-secret check.
    AuthFailed {
        /// The tenant that rejected the credential.
        tenant: String,
    },
    /// The server could not decode the inbound byte stream (torn or
    /// corrupt frame). The connection is unsynchronized and about to
    /// close; reconnect-and-replay recovers.
    BadFrame {
        /// The framing defect, as the server saw it.
        detail: String,
    },
}

impl WireError {
    /// Whether retrying the rejected request can succeed.
    ///
    /// `Overloaded` and `BadFrame` are transient by construction.
    /// `SessionBusy` is retryable because the open round it reports may
    /// be a predecessor client's close still in flight — backing off
    /// and retrying resolves once that close lands. Everything else
    /// reports a condition a retry cannot change.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            WireError::Overloaded { .. }
                | WireError::BadFrame { .. }
                | WireError::SessionBusy { .. }
        )
    }

    /// Server-suggested minimum backoff before retrying, when it sent
    /// one (only [`WireError::Overloaded`] carries it).
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            WireError::Overloaded { retry_after_ms } => {
                Some(std::time::Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Version { min, max, got } => {
                write!(f, "wire version {got} unsupported (serving {min}..={max})")
            }
            WireError::UnknownTenant { tenant } => write!(f, "tenant {tenant:?} is not hosted"),
            WireError::UnknownSession { session } => {
                write!(f, "session {session} was never created or has ended")
            }
            WireError::SessionBusy { session, round } => {
                write!(f, "session {session} still has round {round} open")
            }
            WireError::StaleRound { expected, got } => {
                write!(
                    f,
                    "request for stale round {got}; round {expected} expected"
                )
            }
            WireError::NoOpenRound => write!(f, "no collection round is open"),
            WireError::SequenceGap { expected, got } => write!(
                f,
                "submission sequence {got} skips ahead; next accepted is {expected}"
            ),
            WireError::Service { detail } => write!(f, "service failure: {detail}"),
            WireError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            WireError::Overloaded { retry_after_ms } => {
                write!(f, "tenant overloaded; retry after {retry_after_ms} ms")
            }
            WireError::AuthFailed { tenant } => {
                write!(f, "authentication failed for tenant {tenant:?}")
            }
            WireError::BadFrame { detail } => {
                write!(f, "server could not decode the stream: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<&CoreError> for WireError {
    fn from(e: &CoreError) -> Self {
        match e {
            CoreError::UnknownTenant { tenant } => WireError::UnknownTenant {
                tenant: tenant.clone(),
            },
            CoreError::UnknownSession { session } => {
                WireError::UnknownSession { session: *session }
            }
            CoreError::SessionBusy { session, round } => WireError::SessionBusy {
                session: *session,
                round: *round,
            },
            CoreError::StaleRound { expected, got } => WireError::StaleRound {
                expected: *expected,
                got: *got,
            },
            CoreError::NoOpenRound => WireError::NoOpenRound,
            CoreError::SequenceGap { expected, got } => WireError::SequenceGap {
                expected: *expected,
                got: *got,
            },
            other => WireError::Service {
                detail: other.to_string(),
            },
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_OPEN_ROUND: u8 = 2;
const TAG_SUBMIT_BATCH: u8 = 3;
const TAG_CLOSE_ROUND: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_ERR: u8 = 6;
const TAG_STATS: u8 = 7;

/// Display names of the frame kinds, indexed by
/// [`Frame::kind_index`] — the `tag` label values of the
/// `ldp_net_frames_*_total` counters.
pub const FRAME_KIND_NAMES: [&str; 7] = [
    "hello",
    "open_round",
    "submit_batch",
    "close_round",
    "ack",
    "err",
    "stats",
];

fn put_metric_sample(out: &mut Vec<u8>, sample: &MetricSample) {
    put_str(out, &sample.name);
    put_u32(out, sample.labels.len() as u32);
    for (k, v) in &sample.labels {
        put_str(out, k);
        put_str(out, v);
    }
    match &sample.value {
        MetricValue::Counter(v) => {
            out.push(0);
            put_u64(out, *v);
        }
        MetricValue::Gauge(v) => {
            out.push(1);
            // i64 travels as its two's-complement bit pattern.
            put_u64(out, *v as u64);
        }
        MetricValue::Histogram(h) => {
            out.push(2);
            put_u64(out, h.count);
            put_u64(out, h.sum);
            put_u64(out, h.max);
            put_u32(out, h.buckets.len() as u32);
            for b in &h.buckets {
                put_u64(out, *b);
            }
        }
    }
}

fn take_metric_sample(cur: &mut Cursor<'_>, payload_len: usize) -> Result<MetricSample, String> {
    let name = cur.str()?;
    let nlabels = cur.u32()? as usize;
    if nlabels > payload_len {
        return Err(format!("label count {nlabels} exceeds payload"));
    }
    let mut labels = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        let k = cur.str()?;
        let v = cur.str()?;
        labels.push((k, v));
    }
    let value = match cur.u8()? {
        0 => MetricValue::Counter(cur.u64()?),
        1 => MetricValue::Gauge(cur.u64()? as i64),
        2 => {
            let count = cur.u64()?;
            let sum = cur.u64()?;
            let max = cur.u64()?;
            let nbuckets = cur.u32()? as usize;
            if nbuckets > payload_len {
                return Err(format!("bucket count {nbuckets} exceeds payload"));
            }
            let mut buckets = Vec::with_capacity(nbuckets);
            for _ in 0..nbuckets {
                buckets.push(cur.u64()?);
            }
            MetricValue::Histogram(HistogramSnapshot {
                buckets,
                count,
                sum,
                max,
            })
        }
        tag => return Err(format!("unknown metric value tag {tag}")),
    };
    Ok(MetricSample {
        name,
        labels,
        value,
    })
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn take_opt_u64(cur: &mut Cursor<'_>) -> Result<Option<u64>, String> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.u64()?)),
        tag => Err(format!("unknown option tag {tag}")),
    }
}

fn put_opt_str(out: &mut Vec<u8>, v: Option<&str>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_str(out, v);
        }
    }
}

fn take_opt_str(cur: &mut Cursor<'_>) -> Result<Option<String>, String> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.str()?)),
        tag => Err(format!("unknown option tag {tag}")),
    }
}

impl Frame {
    /// The correlation id this frame carries.
    pub fn corr(&self) -> u64 {
        match self {
            Frame::Hello { corr, .. }
            | Frame::OpenRound { corr, .. }
            | Frame::SubmitBatch { corr, .. }
            | Frame::CloseRound { corr, .. }
            | Frame::StatsRequest { corr, .. }
            | Frame::Ack { corr, .. }
            | Frame::Err { corr, .. } => *corr,
        }
    }

    /// A dense index for this frame's kind, usable to pick a per-tag
    /// counter; [`FRAME_KIND_NAMES`] maps it back to a display name.
    pub fn kind_index(&self) -> usize {
        match self {
            Frame::Hello { .. } => 0,
            Frame::OpenRound { .. } => 1,
            Frame::SubmitBatch { .. } => 2,
            Frame::CloseRound { .. } => 3,
            Frame::Ack { .. } => 4,
            Frame::Err { .. } => 5,
            Frame::StatsRequest { .. } => 6,
        }
    }

    /// This frame's kind as a short display name (a `tag` label value).
    pub fn kind_name(&self) -> &'static str {
        FRAME_KIND_NAMES[self.kind_index()]
    }

    /// Encode into the versioned payload bytes (no frame envelope).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(WIRE_VERSION);
        match self {
            Frame::Hello {
                corr,
                tenant,
                resume,
                token,
            } => {
                out.push(TAG_HELLO);
                put_u64(&mut out, *corr);
                put_str(&mut out, tenant);
                put_opt_u64(&mut out, *resume);
                put_opt_str(&mut out, token.as_deref());
            }
            Frame::OpenRound {
                corr,
                session,
                request,
            } => {
                out.push(TAG_OPEN_ROUND);
                put_u64(&mut out, *corr);
                put_u64(&mut out, *session);
                put_request(&mut out, request);
            }
            Frame::SubmitBatch {
                corr,
                session,
                round,
                seq,
                responses,
            } => {
                out.push(TAG_SUBMIT_BATCH);
                put_u64(&mut out, *corr);
                put_u64(&mut out, *session);
                put_u64(&mut out, *round);
                put_u64(&mut out, *seq);
                put_u32(&mut out, responses.len() as u32);
                for response in responses {
                    put_response(&mut out, response);
                }
            }
            Frame::CloseRound {
                corr,
                session,
                round,
            } => {
                out.push(TAG_CLOSE_ROUND);
                put_u64(&mut out, *corr);
                put_u64(&mut out, *session);
                put_u64(&mut out, *round);
            }
            Frame::StatsRequest { corr, scope } => {
                out.push(TAG_STATS);
                put_u64(&mut out, *corr);
                put_opt_str(&mut out, scope.as_deref());
            }
            Frame::Ack { corr, body } => {
                out.push(TAG_ACK);
                put_u64(&mut out, *corr);
                match body {
                    AckBody::Session {
                        session,
                        next_round,
                        next_seq,
                        open_round,
                    } => {
                        out.push(0);
                        put_u64(&mut out, *session);
                        put_u64(&mut out, *next_round);
                        put_u64(&mut out, *next_seq);
                        put_opt_u64(&mut out, *open_round);
                    }
                    AckBody::Opened { request } => {
                        out.push(1);
                        put_request(&mut out, request);
                    }
                    AckBody::Submitted { next_seq } => {
                        out.push(2);
                        put_u64(&mut out, *next_seq);
                    }
                    AckBody::Closed { estimate } => {
                        out.push(3);
                        put_estimate(&mut out, estimate);
                    }
                    AckBody::Stats { version, samples } => {
                        out.push(4);
                        out.push(*version);
                        put_u32(&mut out, samples.len() as u32);
                        for sample in samples {
                            put_metric_sample(&mut out, sample);
                        }
                    }
                }
            }
            Frame::Err { corr, error } => {
                out.push(TAG_ERR);
                put_u64(&mut out, *corr);
                match error {
                    WireError::Version { min, max, got } => {
                        out.push(0);
                        out.push(*min);
                        out.push(*max);
                        out.push(*got);
                    }
                    WireError::UnknownTenant { tenant } => {
                        out.push(1);
                        put_str(&mut out, tenant);
                    }
                    WireError::UnknownSession { session } => {
                        out.push(2);
                        put_u64(&mut out, *session);
                    }
                    WireError::SessionBusy { session, round } => {
                        out.push(3);
                        put_u64(&mut out, *session);
                        put_u64(&mut out, *round);
                    }
                    WireError::StaleRound { expected, got } => {
                        out.push(4);
                        put_u64(&mut out, *expected);
                        put_u64(&mut out, *got);
                    }
                    WireError::NoOpenRound => out.push(5),
                    WireError::SequenceGap { expected, got } => {
                        out.push(6);
                        put_u64(&mut out, *expected);
                        put_u64(&mut out, *got);
                    }
                    WireError::Service { detail } => {
                        out.push(7);
                        put_str(&mut out, detail);
                    }
                    WireError::Protocol { detail } => {
                        out.push(8);
                        put_str(&mut out, detail);
                    }
                    WireError::Overloaded { retry_after_ms } => {
                        out.push(9);
                        put_u64(&mut out, *retry_after_ms);
                    }
                    WireError::AuthFailed { tenant } => {
                        out.push(10);
                        put_str(&mut out, tenant);
                    }
                    WireError::BadFrame { detail } => {
                        out.push(11);
                        put_str(&mut out, detail);
                    }
                }
            }
        }
        out
    }

    /// Decode a payload produced by [`encode_payload`](Self::encode_payload).
    ///
    /// Never panics: any defect is a typed [`FrameError`].
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
        let malformed = |detail: String| FrameError::Malformed { detail };
        let mut cur = Cursor::new(payload);
        let version = cur.u8().map_err(malformed)?;
        if version != WIRE_VERSION {
            return Err(FrameError::Version { got: version });
        }
        let tag = cur.u8().map_err(malformed)?;
        let frame = (|| -> Result<Frame, String> {
            let corr = cur.u64()?;
            Ok(match tag {
                TAG_HELLO => Frame::Hello {
                    corr,
                    tenant: cur.str()?,
                    resume: take_opt_u64(&mut cur)?,
                    token: take_opt_str(&mut cur)?,
                },
                TAG_OPEN_ROUND => Frame::OpenRound {
                    corr,
                    session: cur.u64()?,
                    request: take_request(&mut cur)?,
                },
                TAG_SUBMIT_BATCH => {
                    let session = cur.u64()?;
                    let round = cur.u64()?;
                    let seq = cur.u64()?;
                    let n = cur.u32()? as usize;
                    if n > payload.len() {
                        return Err(format!("response count {n} exceeds payload"));
                    }
                    let mut responses = Vec::with_capacity(n);
                    for _ in 0..n {
                        responses.push(take_response(&mut cur)?);
                    }
                    Frame::SubmitBatch {
                        corr,
                        session,
                        round,
                        seq,
                        responses,
                    }
                }
                TAG_CLOSE_ROUND => Frame::CloseRound {
                    corr,
                    session: cur.u64()?,
                    round: cur.u64()?,
                },
                TAG_STATS => Frame::StatsRequest {
                    corr,
                    scope: take_opt_str(&mut cur)?,
                },
                TAG_ACK => {
                    let body = match cur.u8()? {
                        0 => AckBody::Session {
                            session: cur.u64()?,
                            next_round: cur.u64()?,
                            next_seq: cur.u64()?,
                            open_round: take_opt_u64(&mut cur)?,
                        },
                        1 => AckBody::Opened {
                            request: take_request(&mut cur)?,
                        },
                        2 => AckBody::Submitted {
                            next_seq: cur.u64()?,
                        },
                        3 => AckBody::Closed {
                            estimate: take_estimate(&mut cur)?,
                        },
                        4 => {
                            let version = cur.u8()?;
                            let n = cur.u32()? as usize;
                            if n > payload.len() {
                                return Err(format!("sample count {n} exceeds payload"));
                            }
                            let mut samples = Vec::with_capacity(n);
                            for _ in 0..n {
                                samples.push(take_metric_sample(&mut cur, payload.len())?);
                            }
                            AckBody::Stats { version, samples }
                        }
                        tag => return Err(format!("unknown ack tag {tag}")),
                    };
                    Frame::Ack { corr, body }
                }
                TAG_ERR => {
                    let error = match cur.u8()? {
                        0 => WireError::Version {
                            min: cur.u8()?,
                            max: cur.u8()?,
                            got: cur.u8()?,
                        },
                        1 => WireError::UnknownTenant { tenant: cur.str()? },
                        2 => WireError::UnknownSession {
                            session: cur.u64()?,
                        },
                        3 => WireError::SessionBusy {
                            session: cur.u64()?,
                            round: cur.u64()?,
                        },
                        4 => WireError::StaleRound {
                            expected: cur.u64()?,
                            got: cur.u64()?,
                        },
                        5 => WireError::NoOpenRound,
                        6 => WireError::SequenceGap {
                            expected: cur.u64()?,
                            got: cur.u64()?,
                        },
                        7 => WireError::Service { detail: cur.str()? },
                        8 => WireError::Protocol { detail: cur.str()? },
                        9 => WireError::Overloaded {
                            retry_after_ms: cur.u64()?,
                        },
                        10 => WireError::AuthFailed { tenant: cur.str()? },
                        11 => WireError::BadFrame { detail: cur.str()? },
                        tag => return Err(format!("unknown error tag {tag}")),
                    };
                    Frame::Err { corr, error }
                }
                tag => return Err(format!("unknown frame tag {tag}")),
            })
        })()
        .map_err(malformed)?;
        cur.finish().map_err(malformed)?;
        Ok(frame)
    }
}
