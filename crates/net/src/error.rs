//! Typed errors of the network layer.
//!
//! Three distinct failure domains get three distinct types:
//!
//! * [`FrameError`] — the *byte stream* is wrong (torn, corrupt,
//!   oversized, or from an unknown protocol version). Produced by the
//!   pure framing codec; never a panic, whatever the input.
//! * [`WireError`](crate::frame::WireError) — the *peer* rejected a
//!   well-formed request (unknown tenant, sequence gap, …). Travels in
//!   `Err` frames.
//! * [`NetError`] — the client-facing union: transport I/O, framing,
//!   remote rejection, or a local protocol-state violation.

use crate::frame::WireError;

/// A defect in the framed byte stream itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does. Incremental readers treat
    /// this as "need more bytes", not a failure.
    Truncated {
        /// Bytes the frame needs in total.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN)
    /// — a corrupt or hostile peer; reading on would buffer unboundedly.
    Oversize {
        /// The declared payload length.
        len: u32,
        /// The maximum this implementation accepts.
        max: u32,
    },
    /// The payload checksum does not match its header.
    Checksum {
        /// CRC-32 the header promised.
        expected: u32,
        /// CRC-32 the payload actually has.
        got: u32,
    },
    /// The payload's version byte names a protocol we do not speak.
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The payload is structurally undecodable (bad tag, truncated
    /// body, trailing bytes, invalid UTF-8 in an id, …).
    Malformed {
        /// What failed to decode.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: {have} of {needed} bytes")
            }
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::Checksum { expected, got } => write!(
                f,
                "frame checksum mismatch: header {expected:#010x}, payload {got:#010x}"
            ),
            FrameError::Version { got } => write!(f, "unsupported wire version {got}"),
            FrameError::Malformed { detail } => write!(f, "malformed frame payload: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Anything a [`NetClient`](crate::NetClient) call can fail with.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The inbound byte stream failed framing or decoding.
    Frame(FrameError),
    /// The server rejected the request with a typed wire error.
    Remote(WireError),
    /// An RPC missed its deadline: no reply arrived within the
    /// client's configured timeout. The connection state is unknown;
    /// reconnect-and-replay recovers.
    Timeout {
        /// The deadline that expired, in milliseconds.
        after_ms: u64,
    },
    /// The conversation broke protocol (an ack for the wrong request,
    /// an operation outside its lifecycle slot, …).
    Protocol {
        /// What went out of step.
        detail: String,
    },
}

impl NetError {
    /// Whether retrying over a fresh connection could succeed — true
    /// for transport and framing failures, false for typed rejections.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Frame(_) | NetError::Timeout { .. }
        )
    }

    /// Uniform retryability: transport, framing, and timeout failures
    /// always warrant a reconnect-and-retry; remote rejections defer
    /// to [`WireError::retryable`]; local protocol-state violations
    /// never do.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Frame(_) | NetError::Timeout { .. } => true,
            NetError::Remote(e) => e.retryable(),
            NetError::Protocol { .. } => false,
        }
    }

    /// Server-suggested minimum backoff before retrying, when the
    /// failure carried one (a remote `Overloaded` rejection).
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            NetError::Remote(e) => e.retry_after(),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Remote(e) => write!(f, "server rejected request: {e}"),
            NetError::Timeout { after_ms } => {
                write!(f, "rpc timed out after {after_ms} ms")
            }
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Remote(e)
    }
}
