//! Per-tenant dispatchers: bounded channels between connections and
//! each tenant's [`IngestService`].
//!
//! Every registered tenant gets one dispatcher thread fed by a bounded
//! `sync_channel`. Connections decode frames and `send` them here; a
//! full queue blocks the connection's reader, which stops draining its
//! socket, which fills the kernel buffers, which back-pressures the
//! client through TCP flow control — the same end-to-end backpressure
//! discipline the worker pool applies inside the service, extended to
//! the wire.
//!
//! Routing all of a tenant's service calls through one thread also
//! keeps per-connection request/reply order trivially FIFO: replies are
//! produced in the order the connection sent requests, so clients can
//! pipeline without a reorder buffer.

use crate::admission::{Admission, AdmissionSnapshot, InflightGuard};
use crate::frame::{AckBody, Frame, WireError, FRAME_KIND_NAMES};
use ldp_obs::Histogram;
use ldp_service::registry::TenantRegistry;
use ldp_service::{IngestService, SessionId};
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One decoded request frame plus the reply lane of the connection it
/// arrived on.
pub struct TenantWork {
    /// The request frame (already validated as a client→server frame).
    pub frame: Frame,
    /// The connection's outbound frame queue. A send failure means the
    /// connection is gone; the reply is then dropped.
    pub reply: SyncSender<Frame>,
    /// The in-flight slot an admitted `SubmitBatch` occupies; released
    /// when the work is dropped (after its reply is sent). `None` for
    /// control frames, which bypass admission.
    pub inflight: Option<InflightGuard>,
}

/// One tenant's routing handle: its dispatcher queue plus the admission
/// state connections consult before enqueueing submits.
#[derive(Clone)]
pub struct TenantHandle {
    /// The tenant's bounded dispatcher queue.
    pub queue: SyncSender<TenantWork>,
    /// The tenant's admission control (auth, rate, in-flight quota).
    pub admission: Arc<Admission>,
}

/// The running dispatcher set: tenant id → its work queue.
pub struct Tenants {
    handles_by_id: HashMap<String, TenantHandle>,
    handles: Vec<JoinHandle<()>>,
}

impl Tenants {
    /// Spawn one dispatcher per tenant currently in `registry`.
    ///
    /// The tenant set is snapshotted here: tenants registered after the
    /// server starts are not served (restart the server to pick them
    /// up).
    pub fn start(registry: &TenantRegistry, queue_depth: usize) -> Tenants {
        let mut handles_by_id = HashMap::new();
        let mut handles = Vec::new();
        for id in registry.tenant_ids() {
            let service = registry.lookup(&id).expect("snapshotted id resolves");
            let limits = registry.limits(&id).expect("snapshotted id resolves");
            let scope = registry.tenant_scope(&id);
            let admission = Arc::new(Admission::with_obs(limits, &scope));
            // One latency histogram per request kind, pre-resolved so
            // the dispatch loop records without touching the registry.
            let rpc_ns: [Arc<Histogram>; FRAME_KIND_NAMES.len()] = FRAME_KIND_NAMES.map(|op| {
                scope.with(&[("op", op)]).histogram(
                    "ldp_net_rpc_ns",
                    "Dispatcher service time per request, in nanoseconds.",
                )
            });
            let (tx, rx) = sync_channel::<TenantWork>(queue_depth);
            let name = format!("tenant-{id}");
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    // Drains until every connection's sender is dropped
                    // (server shutdown), then exits — graceful drain.
                    while let Ok(work) = rx.recv() {
                        let op = work.frame.kind_index();
                        let start = Instant::now();
                        let reply = dispatch(&service, work.frame);
                        rpc_ns[op].record_duration(start.elapsed());
                        let _ = work.reply.send(reply);
                        // `work.inflight` drops here, releasing the
                        // tenant's in-flight slot only after the reply
                        // is on the connection's outbound lane.
                    }
                })
                .expect("spawn tenant dispatcher");
            handles_by_id.insert(
                id,
                TenantHandle {
                    queue: tx,
                    admission,
                },
            );
            handles.push(handle);
        }
        Tenants {
            handles_by_id,
            handles,
        }
    }

    /// The routing handle of `tenant`, if hosted.
    pub fn handle(&self, tenant: &str) -> Option<TenantHandle> {
        self.handles_by_id.get(tenant).cloned()
    }

    /// The work queue of `tenant`, if hosted.
    pub fn sender(&self, tenant: &str) -> Option<SyncSender<TenantWork>> {
        self.handles_by_id.get(tenant).map(|h| h.queue.clone())
    }

    /// The admission counters of `tenant`, if hosted.
    pub fn admission_snapshot(&self, tenant: &str) -> Option<AdmissionSnapshot> {
        self.handles_by_id
            .get(tenant)
            .map(|h| h.admission.snapshot())
    }

    /// Hosted tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.handles_by_id.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Drop the work queues and join every dispatcher after it drains.
    pub fn shutdown(self) {
        drop(self.handles_by_id);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// Execute one request against a tenant's service, producing its
/// `Ack`/`Err` reply frame.
pub fn dispatch(service: &Arc<IngestService>, frame: Frame) -> Frame {
    let corr = frame.corr();
    match execute(service, frame) {
        Ok(body) => Frame::Ack { corr, body },
        Err(error) => Frame::Err { corr, error },
    }
}

fn execute(service: &Arc<IngestService>, frame: Frame) -> Result<AckBody, WireError> {
    match frame {
        Frame::Hello { resume, .. } => {
            let session = match resume {
                Some(raw) => SessionId::from_raw(raw),
                None => service.create_session().map_err(|e| WireError::from(&e))?,
            };
            let status = service.status(session).map_err(|e| WireError::from(&e))?;
            Ok(AckBody::Session {
                session: session.raw(),
                next_round: status.next_round,
                next_seq: status.next_seq,
                open_round: status.open_round,
            })
        }
        Frame::OpenRound {
            session, request, ..
        } => {
            let session = SessionId::from_raw(session);
            let request = service
                .open_round_at(
                    session,
                    request.round,
                    request.t,
                    request.fo,
                    request.epsilon,
                    request.domain_size,
                )
                .map_err(|e| WireError::from(&e))?;
            Ok(AckBody::Opened { request })
        }
        Frame::SubmitBatch {
            session,
            seq,
            responses,
            ..
        } => {
            let session = SessionId::from_raw(session);
            service
                .submit_batch_at(session, seq, responses)
                .map_err(|e| WireError::from(&e))?;
            let next_seq = service.next_seq(session).map_err(|e| WireError::from(&e))?;
            Ok(AckBody::Submitted { next_seq })
        }
        Frame::CloseRound { session, round, .. } => {
            let session = SessionId::from_raw(session);
            let estimate = service
                .close_round_at(session, round)
                .map_err(|e| WireError::from(&e))?;
            Ok(AckBody::Closed { estimate })
        }
        // Stats requests are answered by the connection reader (they
        // need the whole-registry view, not one tenant's service).
        Frame::StatsRequest { .. } => Err(WireError::Protocol {
            detail: "stats requests are served at the connection layer".into(),
        }),
        Frame::Ack { .. } | Frame::Err { .. } => Err(WireError::Protocol {
            detail: "server-only frame sent to server".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_fo::FoKind;
    use ldp_ids::protocol::ReportRequest;
    use ldp_service::{ServiceConfig, TenantSpec};

    fn registry() -> TenantRegistry {
        let registry = TenantRegistry::new();
        registry
            .register(TenantSpec::in_memory(
                "acme",
                ServiceConfig::with_threads(1),
            ))
            .unwrap();
        registry
    }

    #[test]
    fn dispatch_runs_a_full_round() {
        let registry = registry();
        let service = registry.lookup("acme").unwrap();
        let hello = dispatch(
            &service,
            Frame::Hello {
                corr: 1,
                tenant: "acme".into(),
                resume: None,
                token: None,
            },
        );
        let Frame::Ack {
            corr: 1,
            body: AckBody::Session { session, .. },
        } = hello
        else {
            panic!("unexpected hello reply: {hello:?}");
        };
        let open = dispatch(
            &service,
            Frame::OpenRound {
                corr: 2,
                session,
                request: ReportRequest {
                    round: 0,
                    t: 0,
                    fo: FoKind::Grr,
                    epsilon: 8.0,
                    domain_size: 2,
                },
            },
        );
        assert!(
            matches!(
                open,
                Frame::Ack {
                    corr: 2,
                    body: AckBody::Opened { .. }
                }
            ),
            "{open:?}"
        );
        let close = dispatch(
            &service,
            Frame::CloseRound {
                corr: 3,
                session,
                round: 0,
            },
        );
        assert!(
            matches!(
                close,
                Frame::Ack {
                    corr: 3,
                    body: AckBody::Closed { .. }
                }
            ),
            "{close:?}"
        );
    }

    #[test]
    fn service_errors_become_typed_wire_errors() {
        let registry = registry();
        let service = registry.lookup("acme").unwrap();
        let reply = dispatch(
            &service,
            Frame::CloseRound {
                corr: 9,
                session: 404,
                round: 0,
            },
        );
        assert_eq!(
            reply,
            Frame::Err {
                corr: 9,
                error: WireError::UnknownSession { session: 404 }
            }
        );
    }

    #[test]
    fn tenants_snapshot_serves_registered_ids_only() {
        let registry = registry();
        let tenants = Tenants::start(&registry, 4);
        assert!(tenants.handle("acme").is_some());
        assert!(tenants.sender("acme").is_some());
        assert!(tenants.handle("ghost").is_none());
        assert_eq!(tenants.tenant_ids(), vec!["acme"]);
        assert_eq!(tenants.admission_snapshot("acme"), Some(Default::default()));
        tenants.shutdown();
    }
}
