//! Stats-scrape integration tests: the wire-level `StatsRequest` and the
//! Prometheus text endpoint, exercised against a live loopback server.
//!
//! The acceptance bar is double-sided: the scrape must cover service,
//! WAL, and admission series with sane values, *and* the round's
//! estimate must stay f64-bit-identical to the in-process sequential
//! [`AggregationServer`] — observability must never perturb the math.

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{scrape_stats, NetClient, NetServer, ServerConfig, STATS_VERSION};
use ldp_obs::{MetricSample, MetricValue, MetricsExporter};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp_stats_it_{}_{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seeded_responses(oracle: &OracleHandle, round: u64, n: usize, seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| UserResponse::Report {
            round,
            report: oracle.perturb(i % oracle.domain_size(), &mut rng),
        })
        .collect()
}

fn sequential_estimate(
    oracle: &OracleHandle,
    fo: FoKind,
    epsilon: f64,
    responses: &[UserResponse],
) -> RoundEstimate {
    let mut server = AggregationServer::new();
    server.open_round(0, fo, epsilon, oracle.clone());
    for response in responses {
        server.submit(response).unwrap();
    }
    server.close_round().unwrap()
}

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    let a_bits: Vec<u64> = a.frequencies.iter().map(|f| f.to_bits()).collect();
    let b_bits: Vec<u64> = b.frequencies.iter().map(|f| f.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: frequency bits differ");
}

fn counter(samples: &[MetricSample], name: &str, tenant: Option<&str>) -> Option<u64> {
    samples
        .iter()
        .find(|s| s.name == name && tenant.is_none_or(|t| s.label("tenant") == Some(t)))
        .and_then(|s| match s.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
}

fn histogram_count(samples: &[MetricSample], name: &str, tenant: Option<&str>) -> Option<u64> {
    samples
        .iter()
        .find(|s| s.name == name && tenant.is_none_or(|t| s.label("tenant") == Some(t)))
        .and_then(|s| match &s.value {
            MetricValue::Histogram(h) => Some(h.count),
            _ => None,
        })
}

/// One durable round over the wire; a stats scrape mid-flight covers
/// service, WAL, admission, and frame series, and the estimate stays
/// bit-identical to the sequential baseline.
#[test]
fn live_scrape_covers_every_layer_without_perturbing_the_estimate() {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 8);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 600, 17);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let dir = tempdir("scrape");
    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::durable(
            "acme",
            ServiceConfig::with_threads(2),
            &dir,
        ))
        .unwrap();
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();

    let mut client = NetClient::connect(server.addr().to_string(), "acme").unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    for delta in responses.chunks(50) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    // Drain the pipeline so every submit is applied before we scrape.
    client.flush().unwrap();

    let (version, samples) = client.server_stats(None).unwrap();
    assert_eq!(version, STATS_VERSION);

    // Service layer: every accepted response is counted, WAL appends
    // and fsyncs were timed.
    assert_eq!(
        counter(&samples, "ldp_reports_accumulated_total", Some("acme")),
        Some(600),
        "accumulated counter"
    );
    assert_eq!(
        counter(&samples, "ldp_rounds_opened_total", Some("acme")),
        Some(1)
    );
    assert!(histogram_count(&samples, "ldp_wal_append_ns", Some("acme")).unwrap() > 0);
    assert!(histogram_count(&samples, "ldp_wal_fsync_ns", Some("acme")).unwrap() > 0);

    // Admission layer: the submits were admitted. Queue sheds can
    // legitimately occur under pipelining (the client retries them
    // transparently), but no rate or in-flight limits are configured.
    let admitted = counter(&samples, "ldp_admission_admitted_total", Some("acme")).unwrap();
    assert!(admitted >= 12, "admitted {admitted} < submit count");
    for s in samples
        .iter()
        .filter(|s| s.name == "ldp_admission_shed_total")
        .filter(|s| s.label("reason") != Some("queue"))
    {
        assert_eq!(s.value, MetricValue::Counter(0), "unexpected shed: {s:?}");
    }

    // Wire layer: frames counted by kind, RPC latencies timed.
    for s in samples
        .iter()
        .filter(|s| s.name == "ldp_net_frames_in_total")
    {
        assert!(s.label("tag").is_some(), "frames_in without tag: {s:?}");
    }
    let submits_in = samples
        .iter()
        .find(|s| s.name == "ldp_net_frames_in_total" && s.label("tag") == Some("submit_batch"))
        .unwrap();
    assert!(matches!(submits_in.value, MetricValue::Counter(n) if n >= 12));
    let rpc = samples
        .iter()
        .find(|s| s.name == "ldp_net_rpc_ns" && s.label("op") == Some("submit_batch"))
        .unwrap();
    assert!(matches!(&rpc.value, MetricValue::Histogram(h) if h.count >= 12));

    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "scraped round vs in-process");

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `scope` filters the reply to one tenant's series; an unknown scope
/// yields an empty (not erroneous) reply.
#[test]
fn scoped_scrape_filters_to_one_tenant() {
    let registry = TenantRegistry::new();
    for id in ["acme", "globex"] {
        registry
            .register(TenantSpec::in_memory(id, ServiceConfig::with_threads(1)))
            .unwrap();
    }
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 4);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    for id in ["acme", "globex"] {
        let mut client = NetClient::connect(addr.clone(), id).unwrap();
        client.open_round_with(0, fo, epsilon, domain).unwrap();
        client
            .submit_batch(seeded_responses(&oracle, 0, 40, 3))
            .unwrap();
        client.close_round().unwrap();
    }

    let mut client = NetClient::connect(addr, "acme").unwrap();
    let (_, scoped) = client.server_stats(Some("globex")).unwrap();
    assert!(!scoped.is_empty());
    for s in &scoped {
        assert_eq!(
            s.label("tenant"),
            Some("globex"),
            "leaked foreign sample {s:?}"
        );
    }
    assert_eq!(
        counter(&scoped, "ldp_reports_accumulated_total", Some("globex")),
        Some(40)
    );

    let (_, ghost) = client.server_stats(Some("ghost")).unwrap();
    assert!(ghost.is_empty(), "unknown scope must filter to nothing");
    server.shutdown();
}

/// `StatsRequest` is served before `Hello`: a bare connection can
/// scrape without binding to any tenant (what `ldp-client --stats`
/// does).
#[test]
fn stats_scrape_needs_no_hello() {
    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::in_memory(
            "acme",
            ServiceConfig::with_threads(1),
        ))
        .unwrap();
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();

    let (version, samples) =
        scrape_stats(&server.addr().to_string(), None, Duration::from_secs(5)).unwrap();
    assert_eq!(version, STATS_VERSION);
    // The tenant's gauges/counters exist from registration even before
    // any traffic.
    assert_eq!(
        counter(&samples, "ldp_reports_accumulated_total", Some("acme")),
        Some(0)
    );
    server.shutdown();
}

/// The plaintext `--metrics-addr` endpoint serves valid text exposition
/// covering service, WAL, and admission metrics from the same registry
/// the wire scrape reads.
#[test]
fn prometheus_endpoint_covers_service_wal_and_admission() {
    let dir = tempdir("prom");
    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::durable(
            "acme",
            ServiceConfig::with_threads(1),
            &dir,
        ))
        .unwrap();
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();
    let exporter = MetricsExporter::start("127.0.0.1:0", registry.metrics()).unwrap();

    let (fo, epsilon, domain) = (FoKind::Oue, 1.0, 5);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let mut client = NetClient::connect(server.addr().to_string(), "acme").unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    client
        .submit_batch(seeded_responses(&oracle, 0, 80, 9))
        .unwrap();
    client.flush().unwrap();

    let mut stream = TcpStream::connect(exporter.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();

    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    // Service + WAL + admission series, all tenant-labelled.
    assert!(body.contains("ldp_reports_accumulated_total{tenant=\"acme\"} 80"));
    assert!(body.contains("# TYPE ldp_wal_append_ns summary"));
    assert!(body.contains("ldp_wal_append_ns_count{tenant=\"acme\"}"));
    assert!(body.contains("ldp_admission_admitted_total{tenant=\"acme\"}"));
    assert!(body.contains("ldp_net_frames_in_total{tag=\"submit_batch\"}"));
    // Every non-comment line parses as `name{labels} value` with a
    // numeric value — the contract a Prometheus scraper needs.
    for line in body.lines().skip_while(|l| !l.is_empty()).skip(1) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect(line);
        value.parse::<f64>().unwrap_or_else(|_| panic!("{line}"));
    }

    client.close_round().unwrap();
    server.shutdown();
    drop(exporter);
    std::fs::remove_dir_all(&dir).unwrap();
}
