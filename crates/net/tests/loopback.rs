//! Loopback integration tests: a real `NetServer` on an ephemeral port,
//! driven through `NetClient` and through raw sockets.
//!
//! The invariant under test is the workspace's core one — estimates that
//! crossed the wire are **bit-identical** to the sequential in-process
//! [`AggregationServer`] — plus the transport behaviors around it:
//! torn-frame reassembly, typed rejection of protocol misuse, idle
//! reaping, disconnect/resume replay, and graceful shutdown.

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{
    encode_frame, AckBody, Frame, FrameBuffer, NetClient, NetError, NetServer, ServerConfig,
    WireError,
};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(tenants: &[&str]) -> NetServer {
    let registry = TenantRegistry::new();
    for id in tenants {
        registry
            .register(TenantSpec::in_memory(*id, ServiceConfig::with_threads(2)))
            .unwrap();
    }
    NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap()
}

fn seeded_responses(oracle: &OracleHandle, round: u64, n: usize, seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 13 == 12 {
                UserResponse::Refused {
                    round,
                    requested: 1.0,
                    available: 0.25,
                }
            } else {
                UserResponse::Report {
                    round,
                    report: oracle.perturb(i % oracle.domain_size(), &mut rng),
                }
            }
        })
        .collect()
}

fn sequential_estimate(
    oracle: &OracleHandle,
    fo: FoKind,
    epsilon: f64,
    responses: &[UserResponse],
) -> RoundEstimate {
    let mut server = AggregationServer::new();
    server.open_round(0, fo, epsilon, oracle.clone());
    for response in responses {
        server.submit(response).unwrap();
    }
    server.close_round().unwrap()
}

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    let a_bits: Vec<u64> = a.frequencies.iter().map(|f| f.to_bits()).collect();
    let b_bits: Vec<u64> = b.frequencies.iter().map(|f| f.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: frequency bits differ");
}

#[test]
fn network_round_is_bit_identical_to_inprocess() {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 8);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 500, 7);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let server = start_server(&["acme"]);
    let mut client = NetClient::connect(server.addr().to_string(), "acme").unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    for delta in responses.chunks(37) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "loopback vs in-process");
    server.shutdown();
}

#[test]
fn tiny_pipelining_window_still_converges() {
    let (fo, epsilon, domain) = (FoKind::Oue, 1.0, 6);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 300, 11);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let server = start_server(&["acme"]);
    let mut client = NetClient::connect(server.addr().to_string(), "acme")
        .unwrap()
        .with_window(1);
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    for delta in responses.chunks(10) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "window=1");
    server.shutdown();
}

#[test]
fn unknown_tenant_is_a_typed_remote_error() {
    let server = start_server(&["acme"]);
    let err = NetClient::connect(server.addr().to_string(), "ghost").unwrap_err();
    match err {
        NetError::Remote(WireError::UnknownTenant { tenant }) => assert_eq!(tenant, "ghost"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn frames_before_hello_are_rejected() {
    let server = start_server(&["acme"]);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(&encode_frame(&Frame::CloseRound {
            corr: 5,
            session: 0,
            round: 0,
        }))
        .unwrap();
    let reply = read_one_frame(&mut stream);
    match reply {
        Frame::Err {
            corr: 5,
            error: WireError::Protocol { detail },
        } => assert!(detail.contains("Hello"), "{detail}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn torn_frames_across_writes_are_reassembled() {
    let server = start_server(&["acme"]);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let hello = encode_frame(&Frame::Hello {
        corr: 1,
        tenant: "acme".into(),
        resume: None,
        token: None,
    });
    // Dribble the frame one byte per write; the server's FrameBuffer
    // must reassemble it across arbitrarily torn reads.
    for byte in hello {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
    }
    let reply = read_one_frame(&mut stream);
    assert!(
        matches!(
            reply,
            Frame::Ack {
                corr: 1,
                body: AckBody::Session { .. }
            }
        ),
        "{reply:?}"
    );
    server.shutdown();
}

#[test]
fn corrupt_stream_gets_typed_reply_then_close() {
    let server = start_server(&["acme"]);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut bytes = encode_frame(&Frame::Hello {
        corr: 1,
        tenant: "acme".into(),
        resume: None,
        token: None,
    });
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff; // breaks the CRC
    stream.write_all(&bytes).unwrap();
    let reply = read_one_frame(&mut stream);
    // Stream corruption is a typed, *retryable* BadFrame — reconnecting
    // resynchronizes and the idempotent replay recovers.
    match &reply {
        Frame::Err {
            corr: 0,
            error: error @ WireError::BadFrame { .. },
        } => assert!(error.retryable(), "BadFrame must be retryable"),
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    // The connection is unsynchronized after a framing defect: EOF next.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected EOF, got {} bytes", rest.len());
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::in_memory(
            "acme",
            ServiceConfig::with_threads(1),
        ))
        .unwrap();
    let config = ServerConfig {
        read_timeout: Duration::from_millis(100),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = NetServer::start("127.0.0.1:0", &registry, config).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Say nothing; the server should hang up on us.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn disconnect_and_recover_replays_unacked_deltas() {
    let (fo, epsilon, domain) = (FoKind::Olh, 1.0, 10);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 400, 23);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let server = start_server(&["acme"]);
    // A wide window keeps deltas unacknowledged so the drop loses real
    // in-flight state.
    let mut client = NetClient::connect(server.addr().to_string(), "acme")
        .unwrap()
        .with_window(64);
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    let mut chunks = responses.chunks(25);
    for delta in chunks.by_ref().take(8) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    client.disconnect();
    client.recover().unwrap();
    for delta in chunks {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "disconnect/recover");
    server.shutdown();
}

#[test]
fn fresh_resume_client_continues_the_session() {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 4);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 120, 5);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let server = start_server(&["acme"]);
    let addr = server.addr().to_string();
    let mut first = NetClient::connect(addr.clone(), "acme").unwrap();
    first.open_round_with(0, fo, epsilon, domain).unwrap();
    first.submit_batch(responses[..60].to_vec()).unwrap();
    // Wait for the ack so the delta is fully applied, then vanish.
    first.flush().unwrap();
    let session = first.session();
    drop(first);

    let mut second = NetClient::resume(addr, "acme", session).unwrap();
    assert_eq!(second.session(), session);
    assert_eq!(second.open_round(), Some(0));
    second.submit_batch(responses[60..].to_vec()).unwrap();
    let estimate = second.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "fresh resume");
    server.shutdown();
}

#[test]
fn tenants_are_isolated_over_one_listener() {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 5);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let acme = seeded_responses(&oracle, 0, 200, 31);
    let globex = seeded_responses(&oracle, 0, 150, 77);
    let expected_acme = sequential_estimate(&oracle, fo, epsilon, &acme);
    let expected_globex = sequential_estimate(&oracle, fo, epsilon, &globex);

    let server = start_server(&["acme", "globex"]);
    let addr = server.addr().to_string();
    let mut ca = NetClient::connect(addr.clone(), "acme").unwrap();
    let mut cg = NetClient::connect(addr, "globex").unwrap();
    ca.open_round_with(0, fo, epsilon, domain).unwrap();
    cg.open_round_with(0, fo, epsilon, domain).unwrap();
    // Interleave the two tenants' traffic through the one listener.
    let mut ia = acme.chunks(17);
    let mut ig = globex.chunks(17);
    loop {
        let da = ia.next();
        let dg = ig.next();
        if da.is_none() && dg.is_none() {
            break;
        }
        if let Some(delta) = da {
            ca.submit_batch(delta.to_vec()).unwrap();
        }
        if let Some(delta) = dg {
            cg.submit_batch(delta.to_vec()).unwrap();
        }
    }
    assert_bit_identical(&ca.close_round().unwrap(), &expected_acme, "acme");
    assert_bit_identical(&cg.close_round().unwrap(), &expected_globex, "globex");
    server.shutdown();
}

#[test]
fn shutdown_closes_live_connections() {
    let server = start_server(&["acme"]);
    let mut client = NetClient::connect(server.addr().to_string(), "acme").unwrap();
    client.open_round_with(0, FoKind::Grr, 1.0, 2).unwrap();
    server.shutdown();
    // The next blocking call observes the closed socket as an error, not
    // a hang.
    let err = client.submit_batch(vec![]).and_then(|_| {
        // The submit may land in a kernel buffer; the close must fail.
        client.close_round().map(|_| ())
    });
    assert!(err.is_err(), "expected an error after shutdown");
}

/// Read exactly one frame off a raw socket (test helper).
fn read_one_frame(stream: &mut TcpStream) -> Frame {
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = fb.next_frame().unwrap() {
            return frame;
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "EOF while waiting for a frame");
        fb.feed(&buf[..n]);
    }
}
