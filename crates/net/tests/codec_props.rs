//! Property tests for the wire codec: arbitrary frames round-trip
//! losslessly (floats bit-for-bit), and arbitrary corruption — truncated
//! frames, flipped bytes, oversized length prefixes, unknown versions —
//! yields typed [`FrameError`]s, never a panic and never a garbage
//! frame.

use ldp_fo::{FoKind, Report};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{ReportRequest, UserResponse};
use ldp_net::{
    decode_frame, encode_frame, AckBody, Frame, FrameBuffer, FrameError, WireError, MAX_FRAME_LEN,
    WIRE_VERSION,
};
use ldp_obs::{HistogramSnapshot, MetricSample, MetricValue};
use ldp_service::codec::crc32;
use proptest::collection::vec;
use proptest::prelude::*;

/// Finite floats with non-trivial mantissas (NaN excluded so frame
/// equality via `PartialEq` stays meaningful; bit-exactness is asserted
/// through byte-level re-encoding anyway).
fn arb_f64() -> impl Strategy<Value = f64> {
    (any::<i64>(), 1i64..10_000).prop_map(|(num, den)| num as f64 / den as f64)
}

fn arb_report() -> impl Strategy<Value = Report> {
    prop_oneof![
        any::<u32>().prop_map(Report::Grr),
        (vec(any::<u64>(), 0..4), any::<u32>()).prop_map(|(bits, len)| Report::Oue { bits, len }),
        (any::<u64>(), any::<u32>()).prop_map(|(seed, bucket)| Report::Olh { seed, bucket }),
    ]
}

fn arb_response() -> impl Strategy<Value = UserResponse> {
    prop_oneof![
        (any::<u64>(), arb_report())
            .prop_map(|(round, report)| UserResponse::Report { round, report }),
        (any::<u64>(), arb_f64(), arb_f64()).prop_map(|(round, requested, available)| {
            UserResponse::Refused {
                round,
                requested,
                available,
            }
        }),
    ]
}

fn arb_request() -> impl Strategy<Value = ReportRequest> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::sample::select(&FoKind::ALL),
        arb_f64(),
        2usize..512,
    )
        .prop_map(|(round, t, fo, epsilon, domain_size)| ReportRequest {
            round,
            t,
            fo,
            epsilon,
            domain_size,
        })
}

fn arb_estimate() -> impl Strategy<Value = RoundEstimate> {
    (vec(arb_f64(), 0..9), any::<u64>(), arb_f64()).prop_map(|(frequencies, reporters, epsilon)| {
        RoundEstimate {
            frequencies,
            reporters,
            epsilon,
        }
    })
}

fn arb_tenant() -> impl Strategy<Value = String> {
    vec(
        proptest::sample::select(&['a', 'Z', '3', '.', '_', '-']),
        1..20,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(min, max, got)| WireError::Version {
            min,
            max,
            got
        }),
        arb_tenant().prop_map(|tenant| WireError::UnknownTenant { tenant }),
        any::<u64>().prop_map(|session| WireError::UnknownSession { session }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, round)| WireError::SessionBusy { session, round }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(expected, got)| WireError::StaleRound { expected, got }),
        Just(WireError::NoOpenRound),
        (any::<u64>(), any::<u64>())
            .prop_map(|(expected, got)| WireError::SequenceGap { expected, got }),
        arb_tenant().prop_map(|detail| WireError::Service { detail }),
        arb_tenant().prop_map(|detail| WireError::Protocol { detail }),
        any::<u64>().prop_map(|retry_after_ms| WireError::Overloaded { retry_after_ms }),
        arb_tenant().prop_map(|tenant| WireError::AuthFailed { tenant }),
        arb_tenant().prop_map(|detail| WireError::BadFrame { detail }),
    ]
}

fn arb_metric_value() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        any::<u64>().prop_map(MetricValue::Counter),
        any::<i64>().prop_map(MetricValue::Gauge),
        (
            vec(any::<u64>(), 0..8),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(buckets, count, sum, max)| MetricValue::Histogram(
                HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                    max,
                }
            )),
    ]
}

fn arb_metric_sample() -> impl Strategy<Value = MetricSample> {
    (
        arb_tenant(),
        vec((arb_tenant(), arb_tenant()), 0..3),
        arb_metric_value(),
    )
        .prop_map(|(name, labels, value)| MetricSample {
            name,
            labels,
            value,
        })
}

fn arb_ack_body() -> impl Strategy<Value = AckBody> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(session, next_round, next_seq, open)| AckBody::Session {
                session,
                next_round,
                next_seq,
                open_round: open.then_some(next_round),
            }
        ),
        arb_request().prop_map(|request| AckBody::Opened { request }),
        any::<u64>().prop_map(|next_seq| AckBody::Submitted { next_seq }),
        arb_estimate().prop_map(|estimate| AckBody::Closed { estimate }),
        (any::<u8>(), vec(arb_metric_sample(), 0..6))
            .prop_map(|(version, samples)| { AckBody::Stats { version, samples } }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u64>(),
            arb_tenant(),
            any::<u64>(),
            any::<u8>(),
            arb_tenant(),
        )
            .prop_map(|(corr, tenant, raw, flags, token)| Frame::Hello {
                corr,
                tenant,
                resume: (flags & 1 != 0).then_some(raw),
                token: (flags & 2 != 0).then_some(token),
            }),
        (any::<u64>(), any::<u64>(), arb_request()).prop_map(|(corr, session, request)| {
            Frame::OpenRound {
                corr,
                session,
                request,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            vec(arb_response(), 0..12),
        )
            .prop_map(
                |(corr, session, round, seq, responses)| Frame::SubmitBatch {
                    corr,
                    session,
                    round,
                    seq,
                    responses,
                }
            ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(corr, session, round)| {
            Frame::CloseRound {
                corr,
                session,
                round,
            }
        }),
        (any::<u64>(), arb_ack_body()).prop_map(|(corr, body)| Frame::Ack { corr, body }),
        (any::<u64>(), arb_wire_error()).prop_map(|(corr, error)| Frame::Err { corr, error }),
        (any::<u64>(), any::<bool>(), arb_tenant()).prop_map(|(corr, scoped, tenant)| {
            Frame::StatsRequest {
                corr,
                scope: scoped.then_some(tenant),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Encode → decode is lossless and consumes exactly the envelope;
    /// re-encoding the decoded frame reproduces the original bytes, so
    /// floats survive bit-for-bit.
    #[test]
    fn frames_round_trip_bit_exactly(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(encode_frame(&decoded), bytes);
    }

    /// Every strict prefix of a valid frame is a typed `Truncated` error
    /// with an honest byte count — and never a panic.
    #[test]
    fn every_truncation_is_a_typed_error(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { needed, have }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(needed > have, "needed {} !> have {}", needed, have);
                    prop_assert!(needed <= bytes.len());
                }
                other => prop_assert!(false, "cut {} decoded to {:?}", cut, other),
            }
        }
    }

    /// Flipping any single byte of the envelope never panics: the result
    /// is a typed error (almost always `Checksum`; a flip inside the
    /// length prefix surfaces as `Truncated`/`Oversize` first).
    #[test]
    fn single_byte_corruption_never_panics(
        frame in arb_frame(),
        pos in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&frame);
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= flip;
        match decode_frame(&bytes) {
            Err(
                FrameError::Truncated { .. }
                | FrameError::Oversize { .. }
                | FrameError::Checksum { .. }
                | FrameError::Version { .. }
                | FrameError::Malformed { .. },
            ) => {}
            Ok(_) => prop_assert!(false, "corrupt byte {} passed the checksum", pos),
        }
    }

    /// A length prefix past `MAX_FRAME_LEN` is rejected *before* any
    /// buffering, regardless of what follows.
    #[test]
    fn oversized_length_prefix_is_rejected(extra in any::<u32>(), corr in any::<u64>()) {
        let len = MAX_FRAME_LEN as u64 + 1 + (extra as u64 % 1024);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(len as u32).to_le_bytes());
        bytes.extend_from_slice(&corr.to_le_bytes()); // junk CRC + start of payload
        match decode_frame(&bytes) {
            Err(FrameError::Oversize { len: got, max }) => {
                prop_assert_eq!(got, len as u32);
                prop_assert_eq!(max, MAX_FRAME_LEN);
            }
            other => prop_assert!(false, "oversize prefix decoded to {:?}", other),
        }
    }

    /// A well-formed envelope (valid CRC) carrying an unsupported
    /// protocol version is a typed `Version` error.
    #[test]
    fn unknown_version_is_a_typed_error(frame in arb_frame(), bump in 1u8..=255) {
        let encoded = encode_frame(&frame);
        let mut payload = encoded[8..].to_vec();
        payload[0] = WIRE_VERSION.wrapping_add(bump);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match decode_frame(&bytes) {
            Err(FrameError::Version { got }) => {
                prop_assert_eq!(got, WIRE_VERSION.wrapping_add(bump));
            }
            other => prop_assert!(false, "unknown version decoded to {:?}", other),
        }
    }

    /// A `FrameBuffer` fed a frame stream in arbitrary chunk sizes
    /// reproduces exactly the original frames, in order.
    #[test]
    fn frame_buffer_reassembles_any_chunking(
        frames in vec(arb_frame(), 1..6),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode_frame(frame));
        }
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            fb.feed(piece);
            while let Some(frame) = fb.next_frame().expect("valid stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(fb.pending(), 0);
    }

    /// Decoding arbitrary garbage bytes never panics; any `Ok` is a
    /// frame whose re-encoding round-trips (i.e. a genuine accidental
    /// frame, not memory salad).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        if let Ok((frame, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
            let reencoded = encode_frame(&frame);
            prop_assert_eq!(reencoded.as_slice(), &bytes[..used]);
        }
    }
}
