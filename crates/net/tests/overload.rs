//! Overload-protection integration tests: per-tenant admission control
//! enforced by a real `NetServer`, observed through `NetClient`.
//!
//! The acceptance scenario from the issue: a flooding tenant receives
//! typed `Overloaded { retry_after_ms }` frames (never a stalled
//! reader), while a well-behaved co-tenant's round opens, fills, and
//! closes bit-identically *during* the flood — and the flooding
//! tenant's own round still converges once its client backs off and
//! replays, so shedding never loses or double-counts a report.

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{
    ClientOptions, NetClient, NetError, NetServer, RetryPolicy, ServerConfig, WireError,
};
use ldp_service::{RateLimit, ServiceConfig, TenantLimits, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn start_server(tenants: &[(&str, TenantLimits)]) -> NetServer {
    let registry = TenantRegistry::new();
    for (id, limits) in tenants {
        registry
            .register(
                TenantSpec::in_memory(*id, ServiceConfig::with_threads(2))
                    .with_limits(limits.clone()),
            )
            .unwrap();
    }
    NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap()
}

fn seeded_responses(oracle: &OracleHandle, round: u64, n: usize, seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 13 == 12 {
                UserResponse::Refused {
                    round,
                    requested: 1.0,
                    available: 0.25,
                }
            } else {
                UserResponse::Report {
                    round,
                    report: oracle.perturb(i % oracle.domain_size(), &mut rng),
                }
            }
        })
        .collect()
}

fn sequential_estimate(
    oracle: &OracleHandle,
    fo: FoKind,
    epsilon: f64,
    responses: &[UserResponse],
) -> RoundEstimate {
    let mut server = AggregationServer::new();
    server.open_round(0, fo, epsilon, oracle.clone());
    for response in responses {
        server.submit(response).unwrap();
    }
    server.close_round().unwrap()
}

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    let a_bits: Vec<u64> = a.frequencies.iter().map(|f| f.to_bits()).collect();
    let b_bits: Vec<u64> = b.frequencies.iter().map(|f| f.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: frequency bits differ");
}

/// A client that surfaces raw server replies (no retries) sees a typed
/// `Overloaded` with a positive, actionable `retry_after_ms` once it
/// outruns its tenant's token bucket — classified retryable, with the
/// hint exposed through the uniform `NetError` accessors.
#[test]
fn flood_sees_typed_overloaded_with_retry_after() {
    let limits = TenantLimits {
        rate: Some(RateLimit {
            reports_per_sec: 1.0, // all but no refill within the test
            burst: 30,
        }),
        ..TenantLimits::open()
    };
    let server = start_server(&[("flood", limits)]);
    let oracle = build_oracle(FoKind::Grr, 1.0, 4).unwrap();
    let mut client = NetClient::connect_with(
        server.addr().to_string(),
        "flood",
        ClientOptions::default()
            .window(1)
            .retry(RetryPolicy::none()),
    )
    .unwrap();
    client.open_round_with(0, FoKind::Grr, 1.0, 4).unwrap();

    let mut observed = None;
    for chunk in 0..50 {
        let delta = seeded_responses(&oracle, 0, 10, chunk);
        match client.submit_batch(delta) {
            Ok(()) => {}
            Err(err) => {
                observed = Some(err);
                break;
            }
        }
    }
    let err = observed.expect("the bucket (burst 30) must shed within 500 submitted reports");
    match &err {
        NetError::Remote(WireError::Overloaded { retry_after_ms }) => {
            assert!(*retry_after_ms > 0, "hint must be actionable");
        }
        other => panic!("expected typed Overloaded, got {other:?}"),
    }
    assert!(err.retryable(), "Overloaded must be retryable");
    let hint = err.retry_after().expect("Overloaded carries a hint");
    assert!(hint >= Duration::from_millis(1));

    let snap = server.admission_snapshot("flood").unwrap();
    assert!(snap.shed_rate > 0, "server must have counted the shed");
    assert!(snap.admitted > 0, "within-burst submits were admitted");
    server.shutdown();
}

/// The acceptance scenario: while one tenant floods past its rate
/// limit (and is demonstrably being shed), a co-tenant behind the same
/// listener opens, fills, and closes a round bit-identical to the
/// in-process oracle — and the flooding tenant's round *also*
/// converges bit-identically once backoff + reconnect-replay drain it,
/// proving sheds never lose or double-count a report.
#[test]
fn co_tenant_round_closes_during_flood_and_flood_converges() {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 6);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let flood_responses = seeded_responses(&oracle, 0, 400, 101);
    let calm_responses = seeded_responses(&oracle, 0, 300, 202);
    let flood_expected = sequential_estimate(&oracle, fo, epsilon, &flood_responses);
    let calm_expected = sequential_estimate(&oracle, fo, epsilon, &calm_responses);

    let flood_limits = TenantLimits {
        rate: Some(RateLimit {
            reports_per_sec: 2_000.0,
            burst: 50,
        }),
        ..TenantLimits::open()
    };
    let server = start_server(&[("flood", flood_limits), ("calm", TenantLimits::open())]);
    let addr = server.addr().to_string();

    let flood_addr = addr.clone();
    let flood_oracle = flood_responses.clone();
    let flood = std::thread::spawn(move || {
        let retry = RetryPolicy {
            max_retries: 40,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(40),
            rpc_timeout: Duration::from_secs(5),
            seed: 7,
        };
        let mut client = NetClient::connect_with(
            flood_addr,
            "flood",
            ClientOptions::default().window(4).retry(retry),
        )
        .unwrap();
        client.open_round_with(0, fo, epsilon, domain).unwrap();
        for delta in flood_oracle.chunks(25) {
            client.submit_batch(delta.to_vec()).unwrap();
        }
        let estimate = client.close_round().unwrap();
        (estimate, client.stats())
    });

    // Wait until the flood is demonstrably being shed ...
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.admission_snapshot("flood").unwrap();
        if snap.shed_total() > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "flood was never shed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // ... then run the co-tenant's entire round mid-flood. A window
    // below the dispatcher queue depth keeps the client from
    // overflowing its own queue, so any shed here would be the flood's
    // fault — and there must be none.
    let mut calm =
        NetClient::connect_with(addr, "calm", ClientOptions::default().window(4)).unwrap();
    calm.open_round_with(0, fo, epsilon, domain).unwrap();
    for delta in calm_responses.chunks(20) {
        calm.submit_batch(delta.to_vec()).unwrap();
    }
    let calm_estimate = calm.close_round().unwrap();
    assert_bit_identical(&calm_estimate, &calm_expected, "calm co-tenant mid-flood");
    assert_eq!(
        server.admission_snapshot("calm").unwrap().shed_total(),
        0,
        "the co-tenant must never be shed"
    );

    let (flood_estimate, stats) = flood.join().unwrap();
    assert_bit_identical(&flood_estimate, &flood_expected, "flood after backoff");
    assert!(stats.retries > 0, "the flood must have retried: {stats:?}");
    assert!(
        stats.overloaded > 0,
        "retries must include typed Overloaded rejections: {stats:?}"
    );
    assert!(
        stats.reconnects > 0,
        "retries resync via reconnect: {stats:?}"
    );
    assert!(stats.mean_backoff_ms() > 0.0, "backoff must be non-trivial");
    let snap = server.admission_snapshot("flood").unwrap();
    assert!(snap.shed_rate > 0, "server-side shed counters: {snap:?}");
    server.shutdown();
}

/// Auth: a tenant with a shared secret rejects missing and wrong
/// tokens with a typed, non-retryable `AuthFailed`; the right token
/// admits a full round, and reconnect-recovery re-presents it.
#[test]
fn auth_token_gates_the_session_and_survives_recovery() {
    let limits = TenantLimits {
        auth_token: Some("open-sesame".into()),
        ..TenantLimits::open()
    };
    let server = start_server(&[("secured", limits)]);
    let addr = server.addr().to_string();

    let err = NetClient::connect(addr.clone(), "secured").unwrap_err();
    match &err {
        NetError::Remote(WireError::AuthFailed { tenant }) => assert_eq!(tenant, "secured"),
        other => panic!("expected AuthFailed without a token, got {other:?}"),
    }
    assert!(!err.retryable(), "AuthFailed must not be retried");
    assert!(err.retry_after().is_none());

    let err = NetClient::connect_with(
        addr.clone(),
        "secured",
        ClientOptions::default().token("guess"),
    )
    .unwrap_err();
    assert!(
        matches!(&err, NetError::Remote(WireError::AuthFailed { .. })),
        "{err:?}"
    );

    let (fo, epsilon, domain) = (FoKind::Oue, 1.0, 5);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 120, 33);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let mut client = NetClient::connect_with(
        addr,
        "secured",
        ClientOptions::default().token("open-sesame"),
    )
    .unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    client.submit_batch(responses[..60].to_vec()).unwrap();
    // A mid-round reconnect must re-present the token with its resume.
    client.disconnect();
    client.recover().unwrap();
    client.submit_batch(responses[60..].to_vec()).unwrap();
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "authed round with recovery");

    let snap = server.admission_snapshot("secured").unwrap();
    assert_eq!(snap.auth_failures, 2, "one missing + one wrong token");
    server.shutdown();
}

/// An in-flight quota sheds with `Overloaded` when too many submit
/// frames are queued or executing at once, and the round still closes
/// once the retrying client drains.
#[test]
fn inflight_quota_sheds_then_round_still_closes() {
    let limits = TenantLimits {
        max_inflight: Some(1),
        ..TenantLimits::open()
    };
    let server = start_server(&[("narrow", limits)]);
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 4);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 200, 55);
    let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

    let retry = RetryPolicy {
        max_retries: 40,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        rpc_timeout: Duration::from_secs(5),
        seed: 3,
    };
    // A wide window pushes many unacknowledged submits at once, so the
    // single-slot quota must shed some of them.
    let mut client = NetClient::connect_with(
        server.addr().to_string(),
        "narrow",
        ClientOptions::default().window(16).retry(retry),
    )
    .unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    for delta in responses.chunks(10) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected, "single-slot quota");
    server.shutdown();
}
