//! Network chaos matrix (feature `chaos`): every fault kind × shard
//! count × two concurrent tenants, driven through a `FlakyTransport`
//! proxy, must converge to estimates **f64-bit-identical** to the
//! sequential in-process `AggregationServer` — with zero lost and zero
//! duplicated reports (the `reporters` count pins both).
//!
//! Plus the property test from the issue: a corrupted or truncated
//! frame mid-pipeline never panics either side, never loses an acked
//! batch, and the round still converges bit-identically.
//!
//! Run with: `cargo test -p ldp_net --features chaos --test chaos`
#![cfg(feature = "chaos")]

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{
    ChaosConfig, ChaosSnapshot, ClientOptions, ClientStats, FaultKind, FlakyTransport, NetClient,
    NetServer, RetryPolicy, ServerConfig,
};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn seeded_responses(oracle: &OracleHandle, round: u64, n: usize, seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 13 == 12 {
                UserResponse::Refused {
                    round,
                    requested: 1.0,
                    available: 0.25,
                }
            } else {
                UserResponse::Report {
                    round,
                    report: oracle.perturb(i % oracle.domain_size(), &mut rng),
                }
            }
        })
        .collect()
}

fn sequential_estimate(
    oracle: &OracleHandle,
    fo: FoKind,
    epsilon: f64,
    responses: &[UserResponse],
) -> RoundEstimate {
    let mut server = AggregationServer::new();
    server.open_round(0, fo, epsilon, oracle.clone());
    for response in responses {
        server.submit(response).unwrap();
    }
    server.close_round().unwrap()
}

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    let a_bits: Vec<u64> = a.frequencies.iter().map(|f| f.to_bits()).collect();
    let b_bits: Vec<u64> = b.frequencies.iter().map(|f| f.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: frequency bits differ");
}

/// A retry policy generous enough to outlast a sustained fault
/// schedule but with short, test-friendly delays.
fn chaos_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 60,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        rpc_timeout: Duration::from_millis(1500),
        seed,
    }
}

/// Mean forwarded bytes between faults, per fault kind. Lethal kinds
/// (every fault severs the connection) get a wider gap so recovery's
/// replay burst (~window × frame bytes) fits between faults; stream
/// faults can come faster.
fn gap_for(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::Kill | FaultKind::Truncate | FaultKind::Corrupt => 4096,
        FaultKind::PartialWrite | FaultKind::Latency => 1500,
    }
}

/// Drive one tenant's full round through the proxy; returns the
/// network estimate and the client's retry counters.
fn drive_tenant(
    proxy_addr: String,
    tenant: &str,
    responses: Vec<UserResponse>,
    fo: FoKind,
    epsilon: f64,
    domain: usize,
    seed: u64,
) -> (RoundEstimate, ClientStats) {
    let mut client = NetClient::connect_with(
        proxy_addr,
        tenant,
        ClientOptions::default().window(4).retry(chaos_retry(seed)),
    )
    .unwrap();
    client.open_round_with(0, fo, epsilon, domain).unwrap();
    let mid = responses.len() / 2;
    for delta in responses[..mid].chunks(12) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    // Acked-batch checkpoint: everything before this flush is applied
    // server-side; no later fault may lose it.
    client.flush().unwrap();
    for delta in responses[mid..].chunks(12) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    (estimate, client.stats())
}

/// One matrix cell: a two-tenant server with `threads`-way sharded
/// services, a fault-injecting proxy of `kind`, both tenants driven
/// concurrently; both estimates must be bit-identical to in-process.
fn run_cell(kind: FaultKind, threads: usize, seed: u64) -> (ChaosSnapshot, ClientStats) {
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 6);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let acme = seeded_responses(&oracle, 0, 300, seed.wrapping_mul(2) + 1);
    let globex = seeded_responses(&oracle, 0, 240, seed.wrapping_mul(2) + 2);
    let expected_acme = sequential_estimate(&oracle, fo, epsilon, &acme);
    let expected_globex = sequential_estimate(&oracle, fo, epsilon, &globex);

    let registry = TenantRegistry::new();
    for id in ["acme", "globex"] {
        registry
            .register(TenantSpec::in_memory(
                id,
                ServiceConfig::with_threads(threads),
            ))
            .unwrap();
    }
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();
    let proxy = FlakyTransport::start(
        server.addr(),
        ChaosConfig {
            kind,
            seed,
            mean_fault_gap: gap_for(kind),
            spike: Duration::from_millis(20),
        },
    )
    .unwrap();
    let proxy_addr = proxy.addr().to_string();

    let acme_addr = proxy_addr.clone();
    let acme_thread = std::thread::spawn(move || {
        drive_tenant(acme_addr, "acme", acme, fo, epsilon, domain, seed)
    });
    let (globex_estimate, globex_stats) =
        drive_tenant(proxy_addr, "globex", globex, fo, epsilon, domain, seed + 1);
    let (acme_estimate, acme_stats) = acme_thread.join().unwrap();

    let label = format!("{}:{threads}-shard", kind.name());
    assert_bit_identical(&acme_estimate, &expected_acme, &format!("{label}:acme"));
    assert_bit_identical(
        &globex_estimate,
        &expected_globex,
        &format!("{label}:globex"),
    );

    let snapshot = proxy.shutdown();
    server.shutdown();
    let mut stats = acme_stats;
    stats.retries += globex_stats.retries;
    stats.reconnects += globex_stats.reconnects;
    stats.overloaded += globex_stats.overloaded;
    stats.timeouts += globex_stats.timeouts;
    stats.backoff_total += globex_stats.backoff_total;
    (snapshot, stats)
}

/// The full matrix: every fault kind × {1, 2, 8}-way sharding × two
/// concurrent tenants. Asserts convergence per cell and that the
/// schedule actually injected faults somewhere in each kind's row.
#[test]
fn chaos_matrix_converges_bit_identically() {
    for (k, kind) in FaultKind::ALL.into_iter().enumerate() {
        let mut faults = 0u64;
        for (s, threads) in [1usize, 2, 8].into_iter().enumerate() {
            let seed = 1000 + (k as u64) * 10 + s as u64;
            let (snapshot, _stats) = run_cell(kind, threads, seed);
            faults += snapshot.faults();
        }
        assert!(
            faults > 0,
            "{}: the schedule never fired across the row",
            kind.name()
        );
    }
}

/// Kills double as reorder-by-reconnect: the replayed suffix
/// interleaves differently on the fresh connection. The estimate must
/// not care, and recovery must actually have happened.
#[test]
fn kill_storm_forces_reconnects_and_still_converges() {
    let (snapshot, stats) = run_cell(FaultKind::Kill, 2, 4242);
    assert!(snapshot.kills > 0, "no kill ever fired: {snapshot:?}");
    assert!(
        stats.reconnects > 0,
        "kills must force client recovery: {stats:?}"
    );
}

proptest! {
    // Each case boots a real server + proxy; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Issue satellite: a corrupted or truncated frame at an arbitrary
    /// schedule position mid-pipeline never panics either side, never
    /// loses an acknowledged batch (the mid-stream flush checkpoint),
    /// and the round converges bit-identically.
    #[test]
    fn corruption_never_panics_or_loses_acked_batches(
        lethal in any::<bool>(),
        seed in any::<u64>(),
        gap in 1200u64..6000,
    ) {
        let kind = if lethal { FaultKind::Truncate } else { FaultKind::Corrupt };
        let (fo, epsilon, domain) = (FoKind::Oue, 1.0, 5);
        let oracle = build_oracle(fo, epsilon, domain).unwrap();
        let responses = seeded_responses(&oracle, 0, 200, seed);
        let expected = sequential_estimate(&oracle, fo, epsilon, &responses);

        let registry = TenantRegistry::new();
        registry
            .register(TenantSpec::in_memory("acme", ServiceConfig::with_threads(2)))
            .unwrap();
        let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();
        let proxy = FlakyTransport::start(
            server.addr(),
            ChaosConfig {
                kind,
                seed,
                // Lethal faults sever the connection; keep the gap wide
                // enough that recovery's replay burst fits between them.
                mean_fault_gap: if lethal { gap.max(3500) } else { gap },
                spike: Duration::from_millis(5),
            },
        )
        .unwrap();

        let (estimate, _stats) = drive_tenant(
            proxy.addr().to_string(),
            "acme",
            responses,
            fo,
            epsilon,
            domain,
            seed,
        );
        assert_bit_identical(&estimate, &expected, kind.name());
        proxy.shutdown();
        server.shutdown();
    }
}
