//! Runtime w-event budget accounting for the centralized mechanisms.

use ldp_stream::RingWindow;

/// Tracks per-timestamp budget spending and asserts the w-event
/// invariant `Σ_{i = t−w+1}^{t} ε_i ≤ ε` after every step (Theorem 5.1's
/// centralized analogue).
///
/// The ledger is an *assertion*, not a control mechanism: a correctly
/// implemented mechanism never trips it; a buggy allocation panics in
/// tests instead of silently over-spending privacy.
#[derive(Debug, Clone)]
pub struct CdpLedger {
    epsilon: f64,
    window: RingWindow<f64>,
    /// Floating-point slack for the window-sum comparison.
    tolerance: f64,
}

impl CdpLedger {
    /// A ledger for total window budget `ε` over windows of size `w`.
    pub fn new(epsilon: f64, w: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        CdpLedger {
            epsilon,
            window: RingWindow::new(w),
            tolerance: 1e-9 * epsilon,
        }
    }

    /// Record the budget spent at the current timestamp and check the
    /// invariant. Returns the current window total.
    ///
    /// # Panics
    /// If the window total would exceed `ε` (beyond float tolerance).
    pub fn spend(&mut self, eps_t: f64) -> f64 {
        assert!(eps_t >= 0.0, "cannot spend negative budget: {eps_t}");
        self.window.push(eps_t);
        let total = self.window.sum();
        assert!(
            total <= self.epsilon + self.tolerance,
            "w-event budget violated: window total {total} > epsilon {}",
            self.epsilon
        );
        total
    }

    /// Budget spent in the active window.
    pub fn window_total(&self) -> f64 {
        self.window.sum()
    }

    /// Remaining budget in the active window.
    pub fn remaining(&self) -> f64 {
        (self.epsilon - self.window.sum()).max(0.0)
    }

    /// Total window budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Window size `w`.
    pub fn window_size(&self) -> usize {
        self.window.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_exact_budget_split() {
        let mut ledger = CdpLedger::new(1.0, 4);
        for _ in 0..20 {
            ledger.spend(0.25);
        }
        assert!((ledger.window_total() - 1.0).abs() < 1e-9);
        assert!(ledger.remaining() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "w-event budget violated")]
    fn rejects_overspend_within_window() {
        let mut ledger = CdpLedger::new(1.0, 3);
        ledger.spend(0.5);
        ledger.spend(0.5);
        ledger.spend(0.5);
    }

    #[test]
    fn budget_recycles_as_window_slides() {
        let mut ledger = CdpLedger::new(1.0, 2);
        ledger.spend(1.0);
        ledger.spend(0.0);
        // The 1.0 spend is now w timestamps old: full budget again.
        ledger.spend(1.0);
        assert!((ledger.window_total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_spend() {
        CdpLedger::new(1.0, 2).spend(-0.1);
    }

    #[test]
    fn remaining_reports_headroom() {
        let mut ledger = CdpLedger::new(2.0, 5);
        ledger.spend(0.5);
        assert!((ledger.remaining() - 1.5).abs() < 1e-12);
    }
}
