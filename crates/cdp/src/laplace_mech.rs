//! The ε-DP Laplace histogram release primitive.

use ldp_stream::TrueHistogram;
use ldp_util::Laplace;
use rand::RngCore;

/// Releases a count histogram under ε-DP by adding `Lap(1/ε)` noise per
/// cell (count-scale sensitivity 1: one user changing their value at one
/// timestamp moves one cell by ±1 — we follow Kellaris et al. in using
/// Δ = 1).
#[derive(Debug, Clone)]
pub struct LaplaceHistogram {
    epsilon: f64,
}

impl LaplaceHistogram {
    /// Create the primitive for budget `ε > 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and > 0, got {epsilon}"
        );
        LaplaceHistogram { epsilon }
    }

    /// The budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Release noisy *frequencies*: perturb counts with `Lap(1/ε)` and
    /// normalize by the population.
    pub fn release(&self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64> {
        let lap = Laplace::for_budget(1.0, self.epsilon).expect("validated in new");
        let n = truth.population().max(1) as f64;
        truth
            .counts()
            .iter()
            .map(|&c| (c as f64 + lap.sample(rng)) / n)
            .collect()
    }

    /// Per-cell variance of the released *frequency*: `2/(nε)²`.
    pub fn frequency_variance(&self, n: u64) -> f64 {
        let scale = 1.0 / (n.max(1) as f64 * self.epsilon);
        2.0 * scale * scale
    }

    /// Expected absolute error of a released *count* cell: the mean
    /// absolute deviation of `Lap(1/ε)`, i.e. `1/ε`. This is the
    /// publication-error proxy Kellaris et al. compare against the
    /// dissimilarity.
    pub fn count_mae(&self) -> f64 {
        1.0 / self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_util::stats::{mean, sample_variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        LaplaceHistogram::new(0.0);
    }

    #[test]
    fn release_is_unbiased() {
        let mech = LaplaceHistogram::new(1.0);
        let truth = TrueHistogram::new(vec![700, 300]);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let mut acc = [0.0f64; 2];
        for _ in 0..trials {
            let r = mech.release(&truth, &mut rng);
            acc[0] += r[0];
            acc[1] += r[1];
        }
        assert!((acc[0] / trials as f64 - 0.7).abs() < 0.001);
        assert!((acc[1] / trials as f64 - 0.3).abs() < 0.001);
    }

    #[test]
    fn release_variance_matches_formula() {
        let mech = LaplaceHistogram::new(0.5);
        let truth = TrueHistogram::new(vec![500, 500]);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..40_000)
            .map(|_| mech.release(&truth, &mut rng)[0])
            .collect();
        let v = sample_variance(&samples);
        let theory = mech.frequency_variance(1000);
        assert!((v - theory).abs() / theory < 0.05, "{v} vs {theory}");
        assert!((mean(&samples) - 0.5).abs() < 0.001);
    }

    #[test]
    fn count_mae_is_inverse_epsilon() {
        assert!((LaplaceHistogram::new(2.0).count_mae() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn more_budget_less_noise() {
        let lo = LaplaceHistogram::new(0.1).frequency_variance(100);
        let hi = LaplaceHistogram::new(1.0).frequency_variance(100);
        assert!(lo > hi);
    }
}
