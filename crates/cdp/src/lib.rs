//! Centralized w-event differential privacy substrate (paper §3.1–3.2).
//!
//! LDP-IDS ports the budget-division methodology of Kellaris et al.
//! ("Differentially private event sequences over infinite streams",
//! VLDB'14) from the centralized to the local model. This crate
//! implements that centralized substrate — both because the paper's
//! design is defined by analogy to it, and because having it in-tree
//! enables the CDP-vs-LDP ablation benches.
//!
//! Components:
//!
//! * [`LaplaceHistogram`] — the ε-DP histogram release primitive
//!   (`c_t + ⟨Lap(1/ε)⟩^d` on the count scale);
//! * [`CdpUniform`] — even `ε/w` release at every timestamp;
//! * [`CdpSample`] — full-ε release once per window, approximation
//!   elsewhere;
//! * [`CdpBd`] — **Budget Distribution**: exponentially decaying
//!   publication budget, recycled as timestamps expire;
//! * [`CdpBa`] — **Budget Absorption**: uniform allocation with
//!   absorption of skipped budget and post-publication nullification;
//! * [`CdpLedger`] — a runtime w-event accountant asserting
//!   `Σ_{i∈window} ε_i ≤ ε` on every step.
//!
//! All mechanisms consume true histograms (the trusted-aggregator setting)
//! and release frequency vectors, matching the LDP mechanisms' output so
//! the same metrics apply.

#![warn(missing_docs)]

pub mod ba;
pub mod bd;
pub mod laplace_mech;
pub mod ledger;
pub mod mechanism;
pub mod sample;
pub mod uniform;

pub use ba::CdpBa;
pub use bd::CdpBd;
pub use laplace_mech::LaplaceHistogram;
pub use ledger::CdpLedger;
pub use mechanism::{run_cdp, CdpKind, CdpMechanism};
pub use sample::CdpSample;
pub use uniform::CdpUniform;
