//! The naive uniform baseline: `ε/w` at every timestamp (paper §3.2).

use crate::laplace_mech::LaplaceHistogram;
use crate::ledger::CdpLedger;
use crate::mechanism::CdpMechanism;
use ldp_stream::TrueHistogram;
use rand::RngCore;

/// Releases a fresh `ε/w`-DP histogram at every timestamp. Sequential
/// composition over any `w` consecutive timestamps sums to ε.
#[derive(Debug)]
pub struct CdpUniform {
    epsilon: f64,
    w: usize,
    primitive: LaplaceHistogram,
    ledger: CdpLedger,
    publications: u64,
}

impl CdpUniform {
    /// Create the baseline for `(ε, w)`.
    pub fn new(epsilon: f64, w: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        CdpUniform {
            epsilon,
            w,
            primitive: LaplaceHistogram::new(epsilon / w as f64),
            ledger: CdpLedger::new(epsilon, w),
            publications: 0,
        }
    }
}

impl CdpMechanism for CdpUniform {
    fn name(&self) -> &'static str {
        "cdp-uniform"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn window(&self) -> usize {
        self.w
    }

    fn step(&mut self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64> {
        self.ledger.spend(self.epsilon / self.w as f64);
        self.publications += 1;
        self.primitive.release(truth, rng)
    }

    fn publications(&self) -> u64 {
        self.publications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn publishes_every_timestamp() {
        let mut m = CdpUniform::new(1.0, 10);
        let truth = TrueHistogram::new(vec![500, 500]);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 1..=30u64 {
            m.step(&truth, &mut rng);
            assert_eq!(m.publications(), t);
        }
    }

    #[test]
    fn window_budget_never_exceeded() {
        // The internal ledger would panic on violation; run long enough to
        // cover many window slides.
        let mut m = CdpUniform::new(0.8, 7);
        let truth = TrueHistogram::new(vec![10, 20]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            m.step(&truth, &mut rng);
        }
        assert!((m.ledger.window_total() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn noise_grows_with_window() {
        // ε/w per step: w = 50 must be noisier than w = 5.
        let truth = TrueHistogram::new(vec![900, 100]);
        let run = |w: usize| {
            let mut m = CdpUniform::new(1.0, w);
            let mut rng = StdRng::seed_from_u64(3);
            let errs: Vec<f64> = (0..300)
                .map(|_| (m.step(&truth, &mut rng)[1] - 0.1).abs())
                .collect();
            ldp_util::stats::mean(&errs)
        };
        assert!(run(50) > 2.0 * run(5));
    }
}
