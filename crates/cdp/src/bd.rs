//! Budget Distribution (BD) — Kellaris et al., VLDB'14 (paper §3.2).
//!
//! Per timestamp, half the window budget funds a private dissimilarity
//! estimate; the other half is *distributed* in an exponentially decaying
//! way to the timestamps where publication is chosen: each publication
//! takes half of whatever publication budget remains in the active
//! window, and budgets recycle as their timestamps expire.

use crate::laplace_mech::LaplaceHistogram;
use crate::ledger::CdpLedger;
use crate::mechanism::CdpMechanism;
use ldp_stream::{RingWindow, TrueHistogram};
use ldp_util::Laplace;
use rand::RngCore;

/// Minimum usable publication budget: below this, publishing is worse
/// than any plausible approximation (guards against vanishing ε after
/// many consecutive publications).
const MIN_PUB_EPS: f64 = 1e-9;

/// The BD mechanism state.
#[derive(Debug)]
pub struct CdpBd {
    epsilon: f64,
    w: usize,
    d: usize,
    /// ε spent by M₂ at each of the last `w` timestamps.
    pub_window: RingWindow<f64>,
    ledger: CdpLedger,
    last_release: Option<Vec<f64>>,
    publications: u64,
}

impl CdpBd {
    /// Create BD for `(ε, w)` over a domain of size `d`.
    pub fn new(epsilon: f64, w: usize, d: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        assert!(d >= 2, "domain must have at least 2 cells");
        CdpBd {
            epsilon,
            w,
            d,
            pub_window: RingWindow::new(w),
            ledger: CdpLedger::new(epsilon, w),
            last_release: None,
            publications: 0,
        }
    }

    /// Noisy dissimilarity between the current counts and the last
    /// released counts: mean absolute difference per cell, perturbed with
    /// `Lap(2/(d·ε₁))` (one user changes two cells by one, so the mean
    /// absolute difference has sensitivity `2/d`).
    fn noisy_dissimilarity(&self, truth: &TrueHistogram, eps1: f64, rng: &mut dyn RngCore) -> f64 {
        let n = truth.population() as f64;
        let last = self
            .last_release
            .as_deref()
            .map(|r| r.iter().map(|f| f * n).collect::<Vec<f64>>())
            .unwrap_or_else(|| vec![0.0; self.d]);
        let raw: f64 = truth
            .counts()
            .iter()
            .zip(&last)
            .map(|(&c, &l)| (c as f64 - l).abs())
            .sum::<f64>()
            / self.d as f64;
        let noise = Laplace::for_budget(2.0 / self.d as f64, eps1).expect("valid budget");
        raw + noise.sample(rng)
    }
}

impl CdpMechanism for CdpBd {
    fn name(&self) -> &'static str {
        "cdp-bd"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn window(&self) -> usize {
        self.w
    }

    fn step(&mut self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64> {
        // M₁: private dissimilarity with ε/(2w).
        let eps1 = self.epsilon / (2.0 * self.w as f64);
        let dis = self.noisy_dissimilarity(truth, eps1, rng);

        // M₂: distribute — candidate budget is half the remaining window
        // publication budget.
        let spent_pub: f64 = self.pub_window.iter().sum();
        let eps_rm = (self.epsilon / 2.0 - spent_pub).max(0.0);
        let eps2 = eps_rm / 2.0;
        // Potential publication error: expected |Laplace| per count cell.
        let err = if eps2 > MIN_PUB_EPS {
            1.0 / eps2
        } else {
            f64::INFINITY
        };

        let must_publish = self.last_release.is_none();

        if must_publish || dis > err {
            // Publish (the very first timestamp always publishes: there is
            // nothing to approximate with).
            self.pub_window.push(eps2);
            self.ledger.spend(eps1 + eps2);
            self.publications += 1;
            let fresh = LaplaceHistogram::new(eps2.max(MIN_PUB_EPS)).release(truth, rng);
            self.last_release = Some(fresh.clone());
            fresh
        } else {
            // Approximate.
            self.pub_window.push(0.0);
            self.ledger.spend(eps1);
            self.last_release.clone().expect("checked above")
        }
    }

    fn publications(&self) -> u64 {
        self.publications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn static_truth(n: u64) -> TrueHistogram {
        TrueHistogram::new(vec![n * 7 / 10, n - n * 7 / 10])
    }

    #[test]
    fn first_timestamp_publishes() {
        let mut m = CdpBd::new(1.0, 5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        m.step(&static_truth(1000), &mut rng);
        assert_eq!(m.publications(), 1);
    }

    #[test]
    fn static_stream_approximates_sometimes() {
        // The policy is stochastic (noisy dissimilarity vs. noisy last
        // release); on a static stream it must at least *not* publish
        // every timestamp.
        let mut m = CdpBd::new(1.0, 10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let truth = static_truth(100_000);
        for _ in 0..100 {
            m.step(&truth, &mut rng);
        }
        assert!(
            m.publications() < 80,
            "static stream should approximate part of the time, got {}",
            m.publications()
        );
    }

    #[test]
    fn volatile_stream_publishes_more_than_static() {
        let run = |volatile: bool| {
            let mut m = CdpBd::new(1.0, 10, 2);
            let mut rng = StdRng::seed_from_u64(3);
            let n = 100_000u64;
            for t in 0..100u64 {
                let ones = if volatile {
                    // Swing between 10% and 50%.
                    if t % 2 == 0 {
                        n / 10
                    } else {
                        n / 2
                    }
                } else {
                    n / 10
                };
                m.step(&TrueHistogram::new(vec![n - ones, ones]), &mut rng);
            }
            m.publications()
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn budget_never_violated_over_long_run() {
        // Ledger panics internally on violation.
        let mut m = CdpBd::new(0.5, 7, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000u64;
        for t in 0..500u64 {
            let a = (n / 4) + (t % 13) * 100;
            let b = n / 3;
            let truth = TrueHistogram::new(vec![a, b, n - a - b]);
            m.step(&truth, &mut rng);
        }
    }

    #[test]
    fn releases_are_frequency_scaled() {
        let mut m = CdpBd::new(2.0, 5, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let r = m.step(&static_truth(1_000_000), &mut rng);
        assert!((r[0] - 0.7).abs() < 0.05, "release {r:?}");
    }
}
