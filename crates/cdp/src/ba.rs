//! Budget Absorption (BA) — Kellaris et al., VLDB'14 (paper §3.2).
//!
//! The publication half of the budget is allocated *uniformly*
//! (`ε/(2w)` per timestamp); a publication absorbs the unused budget of
//! the skipped timestamps before it, and then an equal number of
//! timestamps after it are nullified (their budget forfeited) so that no
//! window ever exceeds ε.

use crate::laplace_mech::LaplaceHistogram;
use crate::ledger::CdpLedger;
use crate::mechanism::CdpMechanism;
use ldp_stream::TrueHistogram;
use ldp_util::Laplace;
use rand::RngCore;

/// The BA mechanism state.
#[derive(Debug)]
pub struct CdpBa {
    epsilon: f64,
    w: usize,
    d: usize,
    ledger: CdpLedger,
    /// Current timestamp (1-based after first step).
    t: u64,
    /// Timestamp of the last publication, 0 = none yet.
    last_pub_t: u64,
    /// Budget used by the last publication.
    last_pub_eps: f64,
    last_release: Option<Vec<f64>>,
    publications: u64,
}

impl CdpBa {
    /// Create BA for `(ε, w)` over a domain of size `d`.
    pub fn new(epsilon: f64, w: usize, d: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        assert!(d >= 2, "domain must have at least 2 cells");
        CdpBa {
            epsilon,
            w,
            d,
            ledger: CdpLedger::new(epsilon, w),
            t: 0,
            last_pub_t: 0,
            last_pub_eps: 0.0,
            last_release: None,
            publications: 0,
        }
    }

    fn unit(&self) -> f64 {
        self.epsilon / (2.0 * self.w as f64)
    }

    /// How many timestamps after the last publication are nullified
    /// (Alg. 2 line 4): one fewer than the units it absorbed.
    fn nullified_steps(&self) -> u64 {
        (self.last_pub_eps / self.unit() - 1.0).round().max(0.0) as u64
    }

    /// How many budget units a publication at timestamp `t` may absorb.
    fn absorbable_units(&self, t: u64) -> u64 {
        let raw = if self.last_pub_t == 0 {
            t
        } else {
            t.saturating_sub(self.last_pub_t + self.nullified_steps())
        };
        raw.min(self.w as u64)
    }

    fn noisy_dissimilarity(&self, truth: &TrueHistogram, eps1: f64, rng: &mut dyn RngCore) -> f64 {
        let n = truth.population() as f64;
        let last = self
            .last_release
            .as_deref()
            .map(|r| r.iter().map(|f| f * n).collect::<Vec<f64>>())
            .unwrap_or_else(|| vec![0.0; self.d]);
        let raw: f64 = truth
            .counts()
            .iter()
            .zip(&last)
            .map(|(&c, &l)| (c as f64 - l).abs())
            .sum::<f64>()
            / self.d as f64;
        let noise = Laplace::for_budget(2.0 / self.d as f64, eps1).expect("valid budget");
        raw + noise.sample(rng)
    }
}

impl CdpMechanism for CdpBa {
    fn name(&self) -> &'static str {
        "cdp-ba"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn window(&self) -> usize {
        self.w
    }

    fn step(&mut self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64> {
        self.t += 1;
        let eps1 = self.unit();
        let dis = self.noisy_dissimilarity(truth, eps1, rng);

        // Nullification: after a publication that absorbed k units, the
        // next k timestamps must forfeit their budget (Alg. 2 line 4).
        if self.last_pub_t != 0 && self.t - self.last_pub_t <= self.nullified_steps() {
            self.ledger.spend(eps1);
            return self
                .last_release
                .clone()
                .unwrap_or_else(|| vec![0.0; self.d]);
        }

        // Absorption: budget of the skipped timestamps since the last
        // publication (or the start), capped at w units.
        let eps2 = self.unit() * self.absorbable_units(self.t) as f64;
        let err = if eps2 > 0.0 {
            1.0 / eps2
        } else {
            f64::INFINITY
        };

        let must_publish = self.last_release.is_none();
        if must_publish || dis > err {
            self.ledger.spend(eps1 + eps2);
            self.publications += 1;
            self.last_pub_t = self.t;
            self.last_pub_eps = eps2;
            let fresh = LaplaceHistogram::new(eps2.max(1e-9)).release(truth, rng);
            self.last_release = Some(fresh.clone());
            fresh
        } else {
            self.ledger.spend(eps1);
            self.last_release.clone().expect("checked above")
        }
    }

    fn publications(&self) -> u64 {
        self.publications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth_with(n: u64, ones: u64) -> TrueHistogram {
        TrueHistogram::new(vec![n - ones, ones])
    }

    #[test]
    fn first_timestamp_publishes_with_one_unit() {
        let mut m = CdpBa::new(1.0, 5, 2);
        let mut rng = StdRng::seed_from_u64(1);
        m.step(&truth_with(1000, 300), &mut rng);
        assert_eq!(m.publications(), 1);
        assert!((m.last_pub_eps - m.unit()).abs() < 1e-12);
    }

    #[test]
    fn absorption_arithmetic() {
        let mut m = CdpBa::new(1.0, 10, 2);
        // No publication yet: everything since the start is absorbable,
        // capped at w.
        assert_eq!(m.absorbable_units(3), 3);
        assert_eq!(m.absorbable_units(25), 10);
        // After a publication at t = 5 that absorbed 3 units
        // (eps2 = 3 units → 2 nullified steps follow):
        m.last_pub_t = 5;
        m.last_pub_eps = 3.0 * m.unit();
        assert_eq!(m.nullified_steps(), 2);
        assert_eq!(m.absorbable_units(7), 0, "still inside nullification");
        assert_eq!(m.absorbable_units(8), 1);
        assert_eq!(m.absorbable_units(12), 5);
    }

    #[test]
    fn nullification_blocks_publication_deterministically() {
        let mut m = CdpBa::new(1.0, 10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1_000_000u64;
        // Force state: a publication at t = 4 that absorbed 4 units.
        for _ in 0..4 {
            m.step(&truth_with(n, n / 10), &mut rng);
        }
        m.last_pub_t = m.t;
        m.last_pub_eps = 4.0 * m.unit();
        m.last_release = Some(vec![0.9, 0.1]);
        let pubs = m.publications();
        // The next 3 steps are nullified: even a huge change cannot
        // publish.
        for _ in 0..3 {
            m.step(&truth_with(n, n / 2), &mut rng);
            assert_eq!(m.publications(), pubs, "publication during nullification");
        }
        // After nullification, the change can publish again.
        m.step(&truth_with(n, n / 2), &mut rng);
        assert_eq!(m.publications(), pubs + 1);
    }

    #[test]
    fn budget_never_violated_over_long_volatile_run() {
        let mut m = CdpBa::new(0.7, 6, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 500_000u64;
        for t in 0..600u64 {
            let ones = n / 10 + (t % 17) * (n / 200);
            m.step(&truth_with(n, ones), &mut rng);
        }
    }

    #[test]
    fn volatile_stream_publishes_at_least_as_much_as_static() {
        // The adaptive policy is stochastic (the dissimilarity estimate is
        // itself noisy), so only the relative ordering is stable.
        let run = |volatile: bool, seed: u64| {
            let mut m = CdpBa::new(1.0, 10, 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 1_000_000u64;
            for t in 0..200u64 {
                let ones = if volatile {
                    if t % 2 == 0 {
                        n / 10
                    } else {
                        n / 2
                    }
                } else {
                    n / 10
                };
                m.step(&truth_with(n, ones), &mut rng);
            }
            m.publications()
        };
        let volatile: u64 = (0..5).map(|s| run(true, s)).sum();
        let static_: u64 = (0..5).map(|s| run(false, s)).sum();
        assert!(
            volatile > static_,
            "volatile {volatile} vs static {static_}"
        );
    }
}
