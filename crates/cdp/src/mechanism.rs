//! The centralized mechanism trait and runner.

use ldp_stream::{StreamSource, TrueHistogram};
use rand::RngCore;

/// A w-event CDP stream-release mechanism: consumes the true histogram of
/// each timestamp (trusted aggregator) and releases a frequency vector.
pub trait CdpMechanism: Send {
    /// Stable lowercase name.
    fn name(&self) -> &'static str;

    /// Total window budget `ε`.
    fn epsilon(&self) -> f64;

    /// Window size `w`.
    fn window(&self) -> usize;

    /// Process one timestamp and return the released frequencies.
    fn step(&mut self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Number of fresh publications so far (approximations excluded).
    fn publications(&self) -> u64;
}

/// Which centralized baseline to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdpKind {
    /// `ε/w` Laplace release at every timestamp.
    Uniform,
    /// Full-ε release once per window.
    Sample,
    /// Budget Distribution (Kellaris et al.).
    Bd,
    /// Budget Absorption (Kellaris et al.).
    Ba,
}

impl CdpKind {
    /// All centralized baselines.
    pub const ALL: [CdpKind; 4] = [CdpKind::Uniform, CdpKind::Sample, CdpKind::Bd, CdpKind::Ba];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CdpKind::Uniform => "cdp-uniform",
            CdpKind::Sample => "cdp-sample",
            CdpKind::Bd => "cdp-bd",
            CdpKind::Ba => "cdp-ba",
        }
    }

    /// Build the mechanism for a domain of size `d`.
    pub fn build(self, epsilon: f64, w: usize, d: usize) -> Box<dyn CdpMechanism> {
        match self {
            CdpKind::Uniform => Box::new(crate::CdpUniform::new(epsilon, w)),
            CdpKind::Sample => Box::new(crate::CdpSample::new(epsilon, w)),
            CdpKind::Bd => Box::new(crate::CdpBd::new(epsilon, w, d)),
            CdpKind::Ba => Box::new(crate::CdpBa::new(epsilon, w, d)),
        }
    }
}

/// Drive a mechanism over `t_max` timestamps of a source; returns the
/// released frequency matrix.
pub fn run_cdp(
    mechanism: &mut dyn CdpMechanism,
    source: &mut dyn StreamSource,
    t_max: usize,
    rng: &mut dyn RngCore,
) -> Vec<Vec<f64>> {
    (0..t_max)
        .map(|_| {
            let truth = source.next_histogram();
            mechanism.step(&truth, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_stream::source::ConstantSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kinds_build_and_run() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in CdpKind::ALL {
            let mut mech = kind.build(1.0, 5, 2);
            assert_eq!(mech.name(), kind.name());
            assert_eq!(mech.window(), 5);
            assert!((mech.epsilon() - 1.0).abs() < 1e-12);
            let mut src = ConstantSource::new(TrueHistogram::new(vec![800, 200]));
            let released = run_cdp(mech.as_mut(), &mut src, 20, &mut rng);
            assert_eq!(released.len(), 20);
            assert_eq!(released[0].len(), 2);
        }
    }

    #[test]
    fn releases_track_truth_roughly() {
        // With a large population and static stream, every baseline's
        // release should land near the truth.
        let mut rng = StdRng::seed_from_u64(2);
        for kind in CdpKind::ALL {
            let mut mech = kind.build(1.0, 5, 2);
            let mut src = ConstantSource::new(TrueHistogram::new(vec![80_000, 20_000]));
            let released = run_cdp(mech.as_mut(), &mut src, 50, &mut rng);
            let mean_cell1: f64 =
                released.iter().map(|r| r[1]).sum::<f64>() / released.len() as f64;
            assert!(
                (mean_cell1 - 0.2).abs() < 0.02,
                "{}: mean {mean_cell1}",
                kind.name()
            );
        }
    }
}
