//! The fixed-sampling baseline: one full-ε release per window
//! (paper §3.2, "another simple method").

use crate::laplace_mech::LaplaceHistogram;
use crate::ledger::CdpLedger;
use crate::mechanism::CdpMechanism;
use ldp_stream::TrueHistogram;
use rand::RngCore;

/// Publishes a fresh ε-DP histogram at the first timestamp of every
/// `w`-block and approximates the remaining `w − 1` timestamps with it.
/// Parallel-in-time composition: only one timestamp per window spends.
#[derive(Debug)]
pub struct CdpSample {
    epsilon: f64,
    w: usize,
    primitive: LaplaceHistogram,
    ledger: CdpLedger,
    t: u64,
    last_release: Option<Vec<f64>>,
    publications: u64,
}

impl CdpSample {
    /// Create the baseline for `(ε, w)`.
    pub fn new(epsilon: f64, w: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        CdpSample {
            epsilon,
            w,
            primitive: LaplaceHistogram::new(epsilon),
            ledger: CdpLedger::new(epsilon, w),
            t: 0,
            last_release: None,
            publications: 0,
        }
    }
}

impl CdpMechanism for CdpSample {
    fn name(&self) -> &'static str {
        "cdp-sample"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn window(&self) -> usize {
        self.w
    }

    fn step(&mut self, truth: &TrueHistogram, rng: &mut dyn RngCore) -> Vec<f64> {
        let sample_now = self.t.is_multiple_of(self.w as u64);
        self.t += 1;
        if sample_now {
            self.ledger.spend(self.epsilon);
            self.publications += 1;
            let release = self.primitive.release(truth, rng);
            self.last_release = Some(release.clone());
            release
        } else {
            self.ledger.spend(0.0);
            self.last_release
                .clone()
                .unwrap_or_else(|| vec![0.0; truth.domain_size()])
        }
    }

    fn publications(&self) -> u64 {
        self.publications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn publishes_once_per_window() {
        let mut m = CdpSample::new(1.0, 4);
        let truth = TrueHistogram::new(vec![100, 100]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..12 {
            m.step(&truth, &mut rng);
        }
        assert_eq!(m.publications(), 3);
    }

    #[test]
    fn approximations_repeat_last_release() {
        let mut m = CdpSample::new(1.0, 3);
        let truth = TrueHistogram::new(vec![100, 100]);
        let mut rng = StdRng::seed_from_u64(2);
        let first = m.step(&truth, &mut rng);
        let second = m.step(&truth, &mut rng);
        let third = m.step(&truth, &mut rng);
        assert_eq!(first, second);
        assert_eq!(second, third);
        let fourth = m.step(&truth, &mut rng);
        assert_ne!(third, fourth, "new window publishes fresh");
    }

    #[test]
    fn sampling_error_tracks_stream_change() {
        // On a drifting stream, the approximation error grows within the
        // window; the release at sampling points resets it.
        let mut m = CdpSample::new(5.0, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1_000_000u64;
        let mut errs = Vec::new();
        for t in 0..10u64 {
            // Frequency of cell 1 drifts 0.10 → 0.28 over the window.
            let ones = n / 10 + t * n / 50;
            let truth = TrueHistogram::new(vec![n - ones, ones]);
            let rel = m.step(&truth, &mut rng);
            errs.push((rel[1] - truth.frequency(1)).abs());
        }
        assert!(errs[9] > errs[0], "error must grow within window: {errs:?}");
        assert!(errs[9] > 0.1);
    }
}
