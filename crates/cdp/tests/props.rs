//! Property tests for the centralized w-event DP substrate.

use ldp_cdp::{run_cdp, CdpKind, CdpLedger};
use ldp_stream::source::ReplaySource;
use ldp_stream::TrueHistogram;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream_from(rows: Vec<Vec<u64>>) -> ReplaySource {
    let seq: Vec<TrueHistogram> = rows
        .into_iter()
        .map(|mut counts| {
            // Keep the population constant across rows.
            let total: u64 = counts.iter().sum();
            counts[0] += 10_000 - total.min(10_000);
            TrueHistogram::new(counts)
        })
        .collect();
    ReplaySource::new("prop", seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every centralized mechanism runs on any stream and produces the
    /// declared shape; the adaptive ones never panic the ledger.
    #[test]
    fn all_cdp_mechanisms_run(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..2_000, 3..=3), 10..40),
        w in 1usize..12,
        eps in 0.1f64..4.0,
        kind_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let steps = rows.len();
        let mut source = stream_from(rows);
        let kind = CdpKind::ALL[kind_idx];
        let mut mech = kind.build(eps, w, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let released = run_cdp(mech.as_mut(), &mut source, steps, &mut rng);
        prop_assert_eq!(released.len(), steps);
        for row in &released {
            prop_assert_eq!(row.len(), 3);
            for v in row {
                prop_assert!(v.is_finite());
            }
        }
        prop_assert!(mech.publications() <= steps as u64);
    }

    /// The CDP ledger mirrors a sliding-window sum exactly.
    #[test]
    fn ledger_matches_window_model(
        spends in proptest::collection::vec(0.0f64..0.2, 1..60),
        w in 1usize..10,
    ) {
        // Scale spends so no window can exceed ε = 1.
        let mut ledger = CdpLedger::new(1.0, w);
        let mut history: Vec<f64> = Vec::new();
        for &s in &spends {
            let spend = s / w as f64;
            ledger.spend(spend);
            history.push(spend);
            let tail: f64 = history[history.len().saturating_sub(w)..].iter().sum();
            prop_assert!((ledger.window_total() - tail).abs() < 1e-12);
            prop_assert!((ledger.remaining() - (1.0 - tail)).abs() < 1e-9);
        }
    }

    /// Uniform releases are unbiased: with many users the noise is small
    /// relative to the signal at generous ε.
    #[test]
    fn cdp_uniform_tracks_truth(seed in 0u64..500) {
        let rows = vec![vec![8_000u64, 1_000, 1_000]; 8];
        let mut source = stream_from(rows);
        let mut mech = CdpKind::Uniform.build(4.0, 2, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let released = run_cdp(mech.as_mut(), &mut source, 8, &mut rng);
        let avg_cell0: f64 =
            released.iter().map(|r| r[0]).sum::<f64>() / released.len() as f64;
        prop_assert!((avg_cell0 - 0.8).abs() < 0.05, "avg {avg_cell0}");
    }
}
