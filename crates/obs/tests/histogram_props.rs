//! Property tests for the log2 histogram (ISSUE 10 satellite):
//! bucketing correctness, quantile accuracy to one bucket boundary, and
//! lossless concurrent recording.

use ldp_obs::metrics::HISTOGRAM_BUCKETS;
use ldp_obs::{bucket_index, bucket_upper, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

// Fail loudly if the bucket layout ever changes without updating the
// tests below.
const _: [(); 65] = [(); HISTOGRAM_BUCKETS];

proptest! {
    /// Every recorded value lands in exactly its log2 bucket: the
    /// bucket's range contains the value and no other bucket counts it.
    #[test]
    fn values_land_in_the_correct_bucket(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        let idx = bucket_index(v);
        for (i, &n) in snap.buckets.iter().enumerate() {
            prop_assert_eq!(n, u64::from(i == idx), "bucket {} for value {}", i, v);
        }
        // The bucket really covers the value.
        let lower = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
        prop_assert!(lower <= v && v <= bucket_upper(idx));
    }

    /// Quantile readout is within one bucket boundary of the true
    /// quantile: it is at least the true order statistic and at most
    /// the upper bound of the bucket that holds it (clamped to max).
    #[test]
    fn quantile_is_within_one_bucket_of_truth(
        raw in vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &raw {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut values = raw;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let got = snap.quantile(q);
        prop_assert!(got >= truth, "readout {} below true quantile {}", got, truth);
        prop_assert!(
            got <= bucket_upper(bucket_index(truth)),
            "readout {} beyond the bucket of true quantile {}",
            got,
            truth
        );
        prop_assert!(got <= snap.max);
        prop_assert_eq!(snap.quantile(1.0), *values.last().unwrap(), "max is exact");
    }
}

/// Concurrent recording from 8 threads loses no samples: count, sum,
/// max, and every bucket total match the sequential expectation.
#[test]
fn concurrent_recording_loses_no_samples() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix magnitudes so many buckets are contended.
                    h.record((t * PER_THREAD + i) % 4096);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let expected = Histogram::new();
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            expected.record((t * PER_THREAD + i) % 4096);
        }
    }
    let got = h.snapshot();
    let want = expected.snapshot();
    assert_eq!(got.count, THREADS as u64 * PER_THREAD);
    assert_eq!(got.count, want.count);
    assert_eq!(got.sum, want.sum);
    assert_eq!(got.max, want.max);
    assert_eq!(got.buckets, want.buckets, "per-bucket totals must match");
}
