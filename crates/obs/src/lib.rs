//! `ldp_obs` — dependency-light observability for the LDP-IDS repro.
//!
//! The crate has two halves:
//!
//! * **Metrics** ([`metrics`], [`registry`], [`expose`]): lock-free
//!   atomic [`Counter`]s and [`Gauge`]s plus log2-bucketed
//!   [`Histogram`]s with p50/p95/p99/max readout, registered under
//!   static label sets in a [`MetricsRegistry`]. Recording never takes
//!   a lock — the registry mutex guards only metric *creation*; handles
//!   are `Arc`s over plain atomics. A registry snapshots to typed
//!   [`MetricSample`]s (for wire scraping) or renders Prometheus-style
//!   text exposition, optionally served over TCP by a
//!   [`MetricsExporter`].
//!
//! * **Tracing** ([`trace`]): a ring-buffered structured event log with
//!   monotonic timestamps, behind the `trace` cargo feature. With the
//!   feature off every call is an inlined no-op and detail closures are
//!   never run, so instrumented hot paths cost nothing.
//!
//! The crate is deliberately free of dependencies so every layer of the
//! workspace (service, net, bench, bins) can link it without weight.
//!
//! ```
//! use ldp_obs::{MetricsRegistry, Scope};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let scope = Scope::new(Arc::clone(&registry), &[("tenant", "acme")]);
//! let reports = scope.counter("ldp_reports_accumulated_total", "reports accepted");
//! let latency = scope.histogram("ldp_rpc_ns", "RPC service latency (ns)");
//! reports.add(128);
//! latency.record(42_000);
//! assert!(registry.render_prometheus().contains("ldp_reports_accumulated_total"));
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use expose::MetricsExporter;
pub use metrics::{bucket_index, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricKind, MetricSample, MetricValue, MetricsRegistry, Scope};
