//! Lock-free metric primitives: counters, gauges, and log2-bucketed
//! histograms.
//!
//! All recording paths are single atomic RMW operations with relaxed
//! ordering — metrics are monitoring signals, not synchronization
//! edges. Readers observe values that are individually exact but only
//! loosely consistent with each other, which is the standard contract
//! for scrape-style monitoring.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets: one for the value `0` plus one per
/// power-of-two magnitude of a `u64` (`2^0..=2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
///
/// Counters never decrease; derived rates stay meaningful for scrapers
/// that compute deltas between snapshots.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// A fresh shared counter at zero.
    pub fn arc() -> Arc<Counter> {
        Arc::new(Counter::new())
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// A fresh shared gauge at zero.
    pub fn arc() -> Arc<Gauge> {
        Arc::new(Gauge::new())
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`, returning the updated value.
    ///
    /// The returned post-update level lets a gauge double as a quota
    /// counter (admit if the incremented level is within bound, undo
    /// otherwise) so there is one counting path for enforcement and
    /// export.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Increment by one, returning the updated value.
    #[inline]
    pub fn inc(&self) -> i64 {
        self.add(1)
    }

    /// Decrement by one, returning the updated value.
    #[inline]
    pub fn dec(&self) -> i64 {
        self.add(-1)
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket index of `v`: bucket 0 holds exactly `0`, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (`0` for bucket 0,
/// `2^i - 1` otherwise, saturating at `u64::MAX`).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes, wait hints).
///
/// Recording is four relaxed atomic adds (bucket, count, sum) plus one
/// `fetch_max`; no locks, no allocation. Quantile readout walks the 65
/// buckets of a [`HistogramSnapshot`]: the reported quantile is the
/// upper bound of the bucket holding the rank-th sample, clamped to the
/// exact observed maximum — always within one log2 bucket boundary of
/// the true quantile, and exact for `max`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A fresh shared empty histogram.
    pub fn arc() -> Arc<Histogram> {
        Arc::new(Histogram::new())
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at
    /// `u64::MAX`, ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`], suitable for
/// serialization, merging, and quantile readout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the counters).
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` sample, clamped to the exact
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`HistogramSnapshot::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one (bucket-wise add, max of
    /// maxes). Snapshots with mismatched bucket vectors extend to the
    /// longer of the two.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        assert_eq!(g.add(4), 5);
        assert_eq!(g.dec(), 4);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..=63usize {
            assert_eq!(bucket_index(1u64 << (i - 1)), i, "lower edge of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper edge of {i}");
        }
    }

    #[test]
    fn quantiles_walk_buckets_and_max_is_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.quantile(1.0), 100, "max quantile is exact");
        // True p50 is 50 (bucket [32,63]); readout is the bucket upper.
        assert_eq!(snap.p50(), 63);
        // True p99 is 99 (bucket [64,127]); clamped to observed max.
        assert_eq!(snap.p99(), 100);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1013);
        assert_eq!(m.max, 1000);
        assert_eq!(m.quantile(1.0), 1000);
    }
}
