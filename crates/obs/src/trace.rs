//! Structured event tracing: a process-global ring buffer of
//! timestamped events and spans, compiled away without the `trace`
//! feature.
//!
//! Timestamps are nanoseconds on a process-local monotonic clock (first
//! trace call = 0); they order events within one process and measure
//! span durations, nothing more. The ring holds the most recent
//! [`capacity`] events; older ones are silently dropped — tracing is a
//! flight recorder, not an audit log.
//!
//! With the feature off, [`event`] and [`span`] are inlined empty
//! functions and detail closures are never invoked, so instrumented hot
//! paths cost nothing.

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process's first trace call (monotonic).
    pub ts_ns: u64,
    /// Static event name (`service.round_open`, `net.conn_accept`, …).
    pub name: &'static str,
    /// Span duration in nanoseconds; `None` for point events.
    pub dur_ns: Option<u64>,
    /// Free-form detail, formatted lazily at record time.
    pub detail: String,
}

/// Default ring capacity (most recent events kept).
pub const DEFAULT_CAPACITY: usize = 4096;

#[cfg(feature = "trace")]
mod imp {
    use super::{TraceEvent, DEFAULT_CAPACITY};
    use std::collections::VecDeque;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    struct Ring {
        events: VecDeque<TraceEvent>,
        capacity: usize,
    }

    fn ring() -> &'static Mutex<Ring> {
        static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
        RING.get_or_init(|| {
            Mutex::new(Ring {
                events: VecDeque::with_capacity(DEFAULT_CAPACITY),
                capacity: DEFAULT_CAPACITY,
            })
        })
    }

    pub fn now_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub fn push(ev: TraceEvent) {
        let mut ring = ring().lock().expect("trace ring poisoned");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(ev);
    }

    pub fn drain() -> Vec<TraceEvent> {
        ring()
            .lock()
            .expect("trace ring poisoned")
            .events
            .drain(..)
            .collect()
    }

    pub fn set_capacity(capacity: usize) {
        let mut ring = ring().lock().expect("trace ring poisoned");
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
        }
    }
}

/// Whether tracing is compiled in.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

/// Record a point event. `detail` is only invoked when tracing is
/// compiled in.
#[inline]
pub fn event<F: FnOnce() -> String>(name: &'static str, detail: F) {
    #[cfg(feature = "trace")]
    imp::push(TraceEvent {
        ts_ns: imp::now_ns(),
        name,
        dur_ns: None,
        detail: detail(),
    });
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, detail);
    }
}

/// Start a span; its duration is recorded when the guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        Span {
            name,
            start_ns: imp::now_ns(),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        Span { name }
    }
}

/// Guard returned by [`span`]; records `name` with `dur_ns` on drop.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    #[cfg(feature = "trace")]
    start_ns: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        {
            let end = imp::now_ns();
            imp::push(TraceEvent {
                ts_ns: self.start_ns,
                name: self.name,
                dur_ns: Some(end.saturating_sub(self.start_ns)),
                detail: String::new(),
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = self.name;
        }
    }
}

/// Take every buffered event, oldest first (empty without the `trace`
/// feature).
pub fn drain() -> Vec<TraceEvent> {
    #[cfg(feature = "trace")]
    {
        imp::drain()
    }
    #[cfg(not(feature = "trace"))]
    {
        Vec::new()
    }
}

/// Resize the ring (no-op without the `trace` feature). Shrinking drops
/// the oldest events.
pub fn set_capacity(capacity: usize) {
    #[cfg(feature = "trace")]
    imp::set_capacity(capacity);
    #[cfg(not(feature = "trace"))]
    {
        let _ = capacity;
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    // The ring is process-global, so exercise everything in one test to
    // avoid cross-test interference.
    #[test]
    fn events_spans_and_capacity() {
        drain();
        event("test.point", || "k=v".into());
        {
            let _span = span("test.span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "test.point");
        assert_eq!(events[0].detail, "k=v");
        assert_eq!(events[0].dur_ns, None);
        assert_eq!(events[1].name, "test.span");
        assert!(events[1].dur_ns.unwrap() >= 1_000_000);
        assert!(events[1].ts_ns >= events[0].ts_ns, "monotonic order");

        set_capacity(4);
        for i in 0..10u32 {
            event("test.ring", move || i.to_string());
        }
        let events = drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].detail, "6", "oldest events dropped");
        set_capacity(DEFAULT_CAPACITY);
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert_and_lazy() {
        assert!(!enabled());
        event("x", || {
            panic!("detail must not be evaluated when tracing is off")
        });
        let _span = span("y");
        assert!(drain().is_empty());
    }
}
