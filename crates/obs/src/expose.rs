//! Prometheus-style text exposition and the plaintext TCP exporter.
//!
//! Histograms are rendered as summaries (`quantile="0.5|0.95|0.99|1"`
//! series plus `_sum`/`_count`) because log2 buckets carry their
//! quantiles precomputed and summaries keep the body compact.
//!
//! The [`MetricsExporter`] speaks just enough protocol for both
//! `curl http://host:port/metrics` and raw `nc host port`: if the
//! peer's first bytes look like an HTTP request it prefixes a minimal
//! `200 OK` header, otherwise it writes the bare body.

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricKind, MetricSample, MetricValue, MetricsRegistry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Escape a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k="v",...}` (empty string when no labels), with an optional
/// extra `quantile` pair appended.
fn label_block(labels: &[(String, String)], quantile: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        pairs.push(format!("quantile=\"{q}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_histogram(out: &mut String, sample: &MetricSample, snap: &HistogramSnapshot) {
    for (q, v) in [
        ("0.5", snap.p50()),
        ("0.95", snap.p95()),
        ("0.99", snap.p99()),
        ("1", snap.max),
    ] {
        out.push_str(&format!(
            "{}{} {v}\n",
            sample.name,
            label_block(&sample.labels, Some(q))
        ));
    }
    let labels = label_block(&sample.labels, None);
    out.push_str(&format!("{}_sum{labels} {}\n", sample.name, snap.sum));
    out.push_str(&format!("{}_count{labels} {}\n", sample.name, snap.count));
}

impl MetricsRegistry {
    /// Render every registered metric as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let meta = self.meta();
        let samples = self.snapshot();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &samples {
            if last_name != Some(sample.name.as_str()) {
                if let Some((kind, help)) = meta.get(&sample.name) {
                    let kind = match kind {
                        MetricKind::Counter => "counter",
                        MetricKind::Gauge => "gauge",
                        MetricKind::Histogram => "summary",
                    };
                    out.push_str(&format!("# HELP {} {}\n", sample.name, help));
                    out.push_str(&format!("# TYPE {} {kind}\n", sample.name));
                }
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(v) => out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    label_block(&sample.labels, None)
                )),
                MetricValue::Gauge(v) => out.push_str(&format!(
                    "{}{} {v}\n",
                    sample.name,
                    label_block(&sample.labels, None)
                )),
                MetricValue::Histogram(snap) => render_histogram(&mut out, sample, snap),
            }
        }
        out
    }
}

/// A background TCP endpoint serving the registry's text exposition.
///
/// One connection at a time, one response per connection — scrape
/// traffic, not serving traffic. Dropped or shut down, the listener
/// thread exits within its poll interval.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `registry` until
    /// dropped.
    pub fn start(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsExporter> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ldp-metrics".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Scrape endpoints must never take the
                            // server down with them.
                            let _ = serve_one(stream, &registry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawn metrics exporter");
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Answer one scrape connection: sniff for HTTP, write the body, close.
fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut probe = [0u8; 512];
    // Raw TCP scrapers may send nothing at all; a read error or zero
    // bytes still gets the body.
    let n = stream.read(&mut probe).unwrap_or(0);
    let is_http = probe[..n].starts_with(b"GET") || probe[..n].starts_with(b"HEAD");
    let body = registry.render_prometheus();
    if is_http {
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
    }
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_registry() -> Arc<MetricsRegistry> {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("ldp_hits_total", &[("tenant", "acme")], "total hits")
            .add(7);
        reg.gauge("ldp_depth", &[], "queue depth").set(3);
        let h = reg.histogram("ldp_lat_ns", &[("op", "submit")], "latency");
        h.record(100);
        h.record(5000);
        reg
    }

    #[test]
    fn exposition_has_help_type_and_series() {
        let body = seeded_registry().render_prometheus();
        assert!(body.contains("# HELP ldp_hits_total total hits\n"));
        assert!(body.contains("# TYPE ldp_hits_total counter\n"));
        assert!(body.contains("ldp_hits_total{tenant=\"acme\"} 7\n"));
        assert!(body.contains("# TYPE ldp_depth gauge\n"));
        assert!(body.contains("ldp_depth 3\n"));
        assert!(body.contains("# TYPE ldp_lat_ns summary\n"));
        assert!(body.contains("ldp_lat_ns{op=\"submit\",quantile=\"1\"} 5000\n"));
        assert!(body.contains("ldp_lat_ns_sum{op=\"submit\"} 5100\n"));
        assert!(body.contains("ldp_lat_ns_count{op=\"submit\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("n", &[("path", "a\"b\\c\nd")], "n").inc();
        let body = reg.render_prometheus();
        assert!(body.contains("n{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn exporter_serves_http_and_raw() {
        let reg = seeded_registry();
        let exporter = MetricsExporter::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = exporter.addr();

        // HTTP-style scrape.
        let mut http = TcpStream::connect(addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        http.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("ldp_hits_total{tenant=\"acme\"} 7"));

        // Raw scrape: connect, send nothing, read body.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        let mut body = String::new();
        raw.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("# HELP"), "{body}");
        assert!(body.contains("ldp_depth 3"));
    }
}
