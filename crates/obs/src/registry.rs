//! The [`MetricsRegistry`]: get-or-create metric handles under static
//! label sets, snapshot them as typed samples.
//!
//! The registry mutex guards only creation and snapshotting; the
//! returned `Arc` handles record lock-free. Requesting the same
//! `(name, labels)` twice returns the *same* underlying metric, so
//! independent components (or repeated constructions) share one
//! counting path.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count.
    Counter,
    /// Signed instantaneous level.
    Gauge,
    /// Log2-bucketed sample distribution.
    Histogram,
}

/// One metric's current value, as captured by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram contents.
    Histogram(HistogramSnapshot),
}

/// One `(name, labels, value)` triple from a registry snapshot.
///
/// This is the unit of the wire stats protocol: servers serialize a
/// `Vec<MetricSample>` and clients render or aggregate it.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (`ldp_*`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

impl MetricSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }

    fn value(&self) -> MetricValue {
        match self {
            Handle::Counter(c) => MetricValue::Counter(c.get()),
            Handle::Gauge(g) => MetricValue::Gauge(g.get()),
            Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// `(name, sorted labels) → handle`. BTreeMap keeps snapshots and
    /// exposition deterministically ordered.
    metrics: BTreeMap<(String, Vec<(String, String)>), Handle>,
    /// `name → (kind, help)`, recorded at first registration.
    meta: BTreeMap<String, (MetricKind, &'static str)>,
}

/// A set of named metrics under static label sets.
///
/// Cheap to share (`Arc<MetricsRegistry>`); handle creation takes the
/// registry mutex once, after which recording is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

fn canonical(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        want: MetricKind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels = canonical(labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let handle = inner
            .metrics
            .entry((name.to_string(), labels))
            .or_insert_with(make)
            .clone();
        assert!(
            handle.kind() == want,
            "metric `{name}` registered as {:?} and requested as {want:?}",
            handle.kind(),
        );
        inner.meta.entry(name.to_string()).or_insert((want, help));
        handle
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Counter> {
        match self.get_or_create(name, labels, help, MetricKind::Counter, || {
            Handle::Counter(Counter::arc())
        }) {
            Handle::Counter(c) => c,
            other => unreachable!("kind checked in get_or_create: {other:?}"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Gauge> {
        match self.get_or_create(name, labels, help, MetricKind::Gauge, || {
            Handle::Gauge(Gauge::arc())
        }) {
            Handle::Gauge(g) => g,
            other => unreachable!("kind checked in get_or_create: {other:?}"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Arc<Histogram> {
        match self.get_or_create(name, labels, help, MetricKind::Histogram, || {
            Handle::Histogram(Histogram::arc())
        }) {
            Handle::Histogram(h) => h,
            other => unreachable!("kind checked in get_or_create: {other:?}"),
        }
    }

    /// A point-in-time copy of every registered metric, ordered by
    /// `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .metrics
            .iter()
            .map(|((name, labels), handle)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: handle.value(),
            })
            .collect()
    }

    /// `name → (kind, help)` for every registered metric name.
    pub fn meta(&self) -> BTreeMap<String, (MetricKind, &'static str)> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .meta
            .clone()
    }
}

/// A registry handle plus a fixed label prefix, threaded through
/// component constructors so every metric they create carries the
/// component's identity (e.g. `tenant="acme"`).
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Arc<MetricsRegistry>,
    labels: Vec<(String, String)>,
}

impl Scope {
    /// A scope over `registry` with the given base labels.
    pub fn new(registry: Arc<MetricsRegistry>, labels: &[(&str, &str)]) -> Scope {
        Scope {
            registry,
            labels: canonical(labels),
        }
    }

    /// A scope over a fresh private registry with no labels — for
    /// components constructed without explicit observability, so
    /// instrumentation code never needs an `Option`.
    pub fn standalone() -> Scope {
        Scope::new(Arc::new(MetricsRegistry::new()), &[])
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A child scope with `extra` labels appended (extra keys win on
    /// collision is *not* supported — duplicate keys keep the first,
    /// i.e. the parent's, value).
    pub fn with(&self, extra: &[(&str, &str)]) -> Scope {
        let mut labels = self.labels.clone();
        for (k, v) in extra {
            if !labels.iter().any(|(mine, _)| mine == k) {
                labels.push((k.to_string(), v.to_string()));
            }
        }
        labels.sort();
        Scope {
            registry: Arc::clone(&self.registry),
            labels,
        }
    }

    fn borrowed(&self) -> Vec<(&str, &str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }

    /// Get or create a counter under this scope's labels.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.registry.counter(name, &self.borrowed(), help)
    }

    /// Get or create a gauge under this scope's labels.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.registry.gauge(name, &self.borrowed(), help)
    }

    /// Get or create a histogram under this scope's labels.
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        self.registry.histogram(name, &self.borrowed(), help)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", &[("tenant", "acme")], "hits");
        let b = reg.counter("hits", &[("tenant", "acme")], "hits");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn label_order_is_canonicalized() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", &[("b", "2"), ("a", "1")], "hits");
        let b = reg.counter("hits", &[("a", "1"), ("b", "2")], "hits");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_labels_are_distinct_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", &[("tenant", "a")], "hits");
        let b = reg.counter("hits", &[("tenant", "b")], "hits");
        a.inc();
        assert_eq!(b.get(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label("tenant"), Some("a"));
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", &[], "x");
        let _ = reg.gauge("x", &[], "x");
    }

    #[test]
    fn scope_applies_labels_and_extends() {
        let reg = Arc::new(MetricsRegistry::new());
        let scope = Scope::new(Arc::clone(&reg), &[("tenant", "acme")]);
        let shard = scope.with(&[("shard", "0")]);
        shard.gauge("depth", "queue depth").set(4);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].label("tenant"), Some("acme"));
        assert_eq!(snap[0].label("shard"), Some("0"));
        assert_eq!(snap[0].value, MetricValue::Gauge(4));
    }

    #[test]
    fn standalone_scope_is_private() {
        let a = Scope::standalone();
        let b = Scope::standalone();
        a.counter("n", "n").inc();
        assert_eq!(b.counter("n", "n").get(), 0);
    }
}
