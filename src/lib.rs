//! Workspace root package.
//!
//! Exists to host the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`); all functionality lives in the
//! `crates/` members. Re-exports the member crates so examples and
//! downstream docs can reach everything through one name.

pub use ldp_bench as bench;
pub use ldp_cdp as cdp;
pub use ldp_fo as fo;
pub use ldp_ids as ids;
pub use ldp_metrics as metrics;
pub use ldp_net as net;
pub use ldp_service as service;
pub use ldp_stream as stream;
pub use ldp_util as util;
