//! Failure injection and edge-of-domain behaviour.
//!
//! A reproduction is only trustworthy if it fails loudly outside its
//! contract: invalid configurations are rejected at construction,
//! starved mechanisms degrade to approximation instead of violating
//! privacy, and boundary configurations (w = 1, d = 2, tiny populations)
//! run correctly.

use ldp_ids::runner::{run_on_source, CollectorMode};
use ldp_ids::{CoreError, MechanismConfig, MechanismKind};
use ldp_stream::source::{ConstantSource, ReplaySource};
use ldp_stream::TrueHistogram;

fn volatile(n: u64, steps: usize) -> ReplaySource {
    let seq: Vec<TrueHistogram> = (0..steps)
        .map(|i| {
            if i % 2 == 0 {
                TrueHistogram::new(vec![n * 9 / 10, n / 10])
            } else {
                TrueHistogram::new(vec![n / 10, n * 9 / 10])
            }
        })
        .collect();
    ReplaySource::new("volatile", seq)
}

#[test]
fn invalid_configurations_are_rejected() {
    for kind in MechanismKind::ALL {
        for config in [
            MechanismConfig::new(0.0, 10, 2, 1000),
            MechanismConfig::new(-1.0, 10, 2, 1000),
            MechanismConfig::new(f64::NAN, 10, 2, 1000),
            MechanismConfig::new(1.0, 0, 2, 1000),
            MechanismConfig::new(1.0, 10, 1, 1000),
        ] {
            assert!(
                kind.build(&config).is_err(),
                "{kind} accepted invalid config {config:?}"
            );
        }
    }
}

#[test]
fn population_division_rejects_tiny_populations() {
    // N < 2w leaves no dissimilarity users.
    let config = MechanismConfig::new(1.0, 50, 2, 60);
    for kind in [MechanismKind::Lpd, MechanismKind::Lpa] {
        assert!(matches!(
            kind.build(&config),
            Err(CoreError::PopulationTooSmall { .. })
        ));
    }
    // LPU needs only N ≥ w.
    assert!(MechanismKind::Lpu.build(&config).is_ok());
}

#[test]
fn u_min_starvation_degrades_to_approximation() {
    // u_min above any achievable group size: LPD must approximate
    // forever after (never publish), not panic or violate accounting.
    let n = 2_000u64;
    let config = MechanismConfig::new(1.0, 5, 2, n).with_u_min(n);
    let mut mech = MechanismKind::Lpd.build(&config).unwrap();
    let result = run_on_source(
        mech.as_mut(),
        Box::new(volatile(n, 40)),
        40,
        CollectorMode::Aggregate,
        3,
    )
    .unwrap();
    assert_eq!(result.publications, 0);
    assert_eq!(result.releases.len(), 40);
}

#[test]
fn window_of_one_runs_all_mechanisms() {
    // w = 1: every timestamp gets the full budget / population.
    let n = 3_000u64;
    for kind in MechanismKind::ALL {
        let config = MechanismConfig::new(1.0, 1, 2, n);
        let mut mech = kind.build(&config).unwrap();
        let result = run_on_source(
            mech.as_mut(),
            Box::new(volatile(n, 20)),
            20,
            CollectorMode::Aggregate,
            7,
        )
        .unwrap();
        assert_eq!(result.releases.len(), 20, "{kind}");
    }
}

#[test]
fn binary_domain_minimum_runs_all_mechanisms() {
    // d = 2 is the smallest valid domain (the synthetic datasets' case).
    let n = 3_000u64;
    for kind in MechanismKind::ALL {
        let config = MechanismConfig::new(1.0, 4, 2, n);
        let mut mech = kind.build(&config).unwrap();
        let result = run_on_source(
            mech.as_mut(),
            Box::new(volatile(n, 12)),
            12,
            CollectorMode::Client,
            9,
        )
        .unwrap();
        assert_eq!(result.releases.len(), 12, "{kind}");
    }
}

#[test]
fn extreme_epsilon_values_run() {
    let n = 3_000u64;
    for eps in [0.01, 10.0] {
        for kind in [MechanismKind::Lba, MechanismKind::Lpa] {
            let config = MechanismConfig::new(eps, 5, 2, n);
            let mut mech = kind.build(&config).unwrap();
            let result = run_on_source(
                mech.as_mut(),
                Box::new(volatile(n, 15)),
                15,
                CollectorMode::Aggregate,
                11,
            )
            .unwrap();
            assert_eq!(result.releases.len(), 15, "{kind} at eps={eps}");
        }
    }
}

#[test]
fn all_users_in_one_cell_is_handled() {
    // Degenerate truth (every user holds value 0) must estimate cleanly.
    let n = 5_000u64;
    let source = ConstantSource::new(TrueHistogram::new(vec![n, 0]));
    let config = MechanismConfig::new(2.0, 4, 2, n);
    let mut mech = MechanismKind::Lpu.build(&config).unwrap();
    let result = run_on_source(
        mech.as_mut(),
        Box::new(source),
        12,
        CollectorMode::Aggregate,
        13,
    )
    .unwrap();
    let last = result.releases.last().unwrap();
    assert!(
        last.frequencies[0] > 0.8,
        "estimate should find the point mass: {:?}",
        last.frequencies
    );
}

#[test]
fn zero_population_cell_draws_never_overflow() {
    // Histograms with empty cells exercise the hypergeometric splitter's
    // zero-cell paths.
    let n = 4_000u64;
    let source = ConstantSource::new(TrueHistogram::new(vec![0, n, 0, 0]));
    let config = MechanismConfig::new(1.0, 3, 4, n);
    let mut mech = MechanismKind::Lpa.build(&config).unwrap();
    let result = run_on_source(
        mech.as_mut(),
        Box::new(source),
        9,
        CollectorMode::Aggregate,
        17,
    )
    .unwrap();
    assert_eq!(result.releases.len(), 9);
}

#[test]
fn pool_exhaustion_error_reports_numbers() {
    use ldp_ids::collector::{AggregateCollector, ReportScope, RoundCollector};

    let source = ConstantSource::new(TrueHistogram::new(vec![500, 500]));
    let config = MechanismConfig::new(1.0, 4, 2, 1000);
    let mut collector = AggregateCollector::new(Box::new(source), &config, 1);
    collector.begin_step().unwrap();
    collector.collect(ReportScope::Fresh(900), 1.0).unwrap();
    match collector.collect(ReportScope::Fresh(200), 1.0) {
        Err(CoreError::PoolExhausted {
            requested,
            available,
        }) => {
            assert_eq!(requested, 200);
            assert_eq!(available, 100);
        }
        other => panic!("expected PoolExhausted, got {other:?}"),
    }
}

#[test]
fn population_churn_is_an_error_not_corruption() {
    // Paper Remark 2: time-varying populations are out of scope. A
    // stream whose population shrinks mid-run must surface as
    // PopulationDrift from either collector, never silent mis-counting.
    let seq = vec![
        TrueHistogram::new(vec![500, 500]),
        TrueHistogram::new(vec![500, 500]),
        TrueHistogram::new(vec![450, 450]), // 100 users churned out
    ];
    for mode in [CollectorMode::Aggregate, CollectorMode::Client] {
        let config = MechanismConfig::new(1.0, 2, 2, 1000);
        let mut mech = MechanismKind::Lpu.build(&config).unwrap();
        let err = run_on_source(
            mech.as_mut(),
            Box::new(ReplaySource::new("churn", seq.clone())),
            3,
            mode,
            21,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::PopulationDrift {
                    expected: 1000,
                    got: 900
                }
            ),
            "{mode:?}: {err}"
        );
    }
}

#[test]
fn lopsided_dissimilarity_share_runs() {
    // Non-default M1/M2 splits must preserve all accounting.
    let n = 10_000u64;
    for share in [0.2, 0.8] {
        for kind in [
            MechanismKind::Lbd,
            MechanismKind::Lba,
            MechanismKind::Lpd,
            MechanismKind::Lpa,
        ] {
            let config = MechanismConfig::new(1.0, 5, 2, n).with_dissimilarity_share(share);
            let mut mech = kind.build(&config).unwrap();
            let result = run_on_source(
                mech.as_mut(),
                Box::new(volatile(n, 30)),
                30,
                CollectorMode::Aggregate,
                23,
            )
            .unwrap();
            assert_eq!(result.releases.len(), 30, "{kind} share={share}");
        }
    }
}

#[test]
fn invalid_share_is_rejected() {
    for share in [0.0, 1.0, -0.5] {
        let config = MechanismConfig::new(1.0, 5, 2, 1000).with_dissimilarity_share(share);
        assert!(MechanismKind::Lba.build(&config).is_err(), "share {share}");
    }
}
