//! End-to-end acceptance for the network frontend (ISSUE 7): reports
//! that travel NetClient → TCP → tenant registry → `IngestService` must
//! close to estimates **bit-identical** to the sequential in-process
//! [`AggregationServer`] — with two tenants driven concurrently over one
//! listener, and with a client that is severed mid-round and
//! reconnects-with-replay.
//!
//! Determinism rests on the same argument as the in-process service:
//! perturbation happens client-side, support-count folding is
//! commutative integer addition, and the estimate is a pure function of
//! the merged tally — so neither thread interleaving nor TCP chunking
//! nor duplicate delivery after replay can perturb a single mantissa
//! bit.

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::RoundEstimate;
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{NetClient, NetServer, ServerConfig};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    let a_bits: Vec<u64> = a.frequencies.iter().map(|f| f.to_bits()).collect();
    let b_bits: Vec<u64> = b.frequencies.iter().map(|f| f.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: frequency bits differ");
}

fn seeded_responses(oracle: &OracleHandle, round: u64, n: usize, seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 17 == 16 {
                UserResponse::Refused {
                    round,
                    requested: 0.5,
                    available: 0.1,
                }
            } else {
                UserResponse::Report {
                    round,
                    report: oracle.perturb((i * 7) % oracle.domain_size(), &mut rng),
                }
            }
        })
        .collect()
}

fn sequential_rounds(
    oracle: &OracleHandle,
    fo: FoKind,
    epsilon: f64,
    rounds: &[Vec<UserResponse>],
) -> Vec<RoundEstimate> {
    let mut server = AggregationServer::new();
    rounds
        .iter()
        .enumerate()
        .map(|(t, responses)| {
            server.open_round(t as u64, fo, epsilon, oracle.clone());
            for response in responses {
                server.submit(response).unwrap();
            }
            server.close_round().unwrap()
        })
        .collect()
}

/// Two tenants, two client threads, one listener: each tenant's
/// multi-round estimates must equal its own dedicated sequential
/// server's, bit for bit, despite fully interleaved service.
#[test]
fn concurrent_tenants_match_sequential_server_bit_for_bit() {
    let epsilon = 1.0;
    // Different oracles and domains per tenant: cross-talk of any kind
    // would not just perturb bits, it would shear shapes.
    let tenants = [
        ("acme", FoKind::Grr, 6, 101u64),
        ("globex", FoKind::Oue, 9, 202u64),
    ];

    let registry = TenantRegistry::new();
    for (id, _, _, _) in &tenants {
        registry
            .register(TenantSpec::in_memory(*id, ServiceConfig::with_threads(2)))
            .unwrap();
    }
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let handles: Vec<_> = tenants
        .iter()
        .map(|&(id, fo, domain, seed)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let oracle = build_oracle(fo, epsilon, domain).unwrap();
                let rounds: Vec<Vec<UserResponse>> = (0..3)
                    .map(|r| seeded_responses(&oracle, r, 240 + 40 * r as usize, seed + r))
                    .collect();
                let expected = sequential_rounds(&oracle, fo, epsilon, &rounds);

                let mut client = NetClient::connect(addr, id).unwrap();
                let estimates: Vec<RoundEstimate> = rounds
                    .iter()
                    .enumerate()
                    .map(|(t, responses)| {
                        client
                            .open_round_with(t as u64, fo, epsilon, domain)
                            .unwrap();
                        for delta in responses.chunks(19) {
                            client.submit_batch(delta.to_vec()).unwrap();
                        }
                        client.close_round().unwrap()
                    })
                    .collect();
                (id, expected, estimates)
            })
        })
        .collect();

    for handle in handles {
        let (id, expected, estimates) = handle.join().unwrap();
        assert_eq!(expected.len(), estimates.len());
        for (round, (want, got)) in expected.iter().zip(&estimates).enumerate() {
            assert_bit_identical(got, want, &format!("tenant {id}, round {round}"));
        }
    }
    server.shutdown();
}

/// A client severed mid-round with a window full of unacknowledged
/// deltas reconnects, replays, finishes the round — and the estimate is
/// the one an uninterrupted sequential run would have produced.
#[test]
fn mid_round_disconnect_replay_converges_bit_for_bit() {
    let (fo, epsilon, domain) = (FoKind::Adaptive, 1.0, 12);
    let oracle = build_oracle(fo, epsilon, domain).unwrap();
    let responses = seeded_responses(&oracle, 0, 600, 4242);
    let expected = sequential_rounds(&oracle, fo, epsilon, std::slice::from_ref(&responses));

    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::in_memory(
            "acme",
            ServiceConfig::with_threads(2),
        ))
        .unwrap();
    let server = NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).unwrap();

    let mut client = NetClient::connect(server.addr().to_string(), "acme")
        .unwrap()
        .with_window(64);
    client.open_round_with(0, fo, epsilon, domain).unwrap();

    let mut chunks = responses.chunks(30);
    for delta in chunks.by_ref().take(10) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    // Cut the wire with up to 10 deltas still unacknowledged, twice —
    // replay must dedup whatever the server already applied.
    client.disconnect();
    client.recover().unwrap();
    for delta in chunks.by_ref().take(5) {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    client.disconnect();
    client.recover().unwrap();
    for delta in chunks {
        client.submit_batch(delta.to_vec()).unwrap();
    }
    let estimate = client.close_round().unwrap();
    assert_bit_identical(&estimate, &expected[0], "disconnect + replay");
    server.shutdown();
}
