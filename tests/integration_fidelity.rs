//! Collector fidelity: the aggregate-level sampler must be statistically
//! indistinguishable from driving real per-user clients.
//!
//! DESIGN.md's key performance claim is that `AggregateCollector` draws
//! from the *exact* distribution of summed per-user reports. These tests
//! compare the two backends' estimate moments and the mechanisms'
//! end-to-end error under both.

use ldp_ids::collector::{AggregateCollector, ReportScope, RoundCollector};
use ldp_ids::protocol::ClientCollector;
use ldp_ids::runner::{run_on_source, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_stream::source::ConstantSource;
use ldp_stream::{Dataset, MaterializedStream, TrueHistogram};
use ldp_util::stats::{mean, sample_variance};

fn one_round_estimates(
    mode: CollectorMode,
    trials: usize,
    scope: ReportScope,
    eps: f64,
) -> Vec<f64> {
    let counts = vec![1400u64, 600];
    let config = MechanismConfig::new(eps, 4, 2, 2000);
    (0..trials)
        .map(|seed| {
            let source = ConstantSource::new(TrueHistogram::new(counts.clone()));
            let mut collector: Box<dyn RoundCollector> = match mode {
                CollectorMode::Aggregate => Box::new(AggregateCollector::new(
                    Box::new(source),
                    &config,
                    seed as u64,
                )),
                CollectorMode::Client => {
                    Box::new(ClientCollector::new(Box::new(source), &config, seed as u64))
                }
            };
            collector.begin_step().unwrap();
            collector.collect(scope, eps).unwrap().frequencies[0]
        })
        .collect()
}

#[test]
fn collectors_agree_on_all_scope_moments() {
    let eps = 1.0;
    let trials = 300;
    let agg = one_round_estimates(CollectorMode::Aggregate, trials, ReportScope::All, eps);
    let cli = one_round_estimates(CollectorMode::Client, trials, ReportScope::All, eps);
    let (m_a, m_c) = (mean(&agg), mean(&cli));
    assert!((m_a - 0.7).abs() < 0.02, "aggregate mean {m_a}");
    assert!((m_c - 0.7).abs() < 0.02, "client mean {m_c}");
    let (v_a, v_c) = (sample_variance(&agg), sample_variance(&cli));
    let ratio = v_a / v_c;
    assert!(
        (0.6..1.6).contains(&ratio),
        "variance mismatch: aggregate {v_a} vs client {v_c}"
    );
}

#[test]
fn collectors_agree_on_fresh_scope_moments() {
    let eps = 1.0;
    let trials = 300;
    let agg = one_round_estimates(
        CollectorMode::Aggregate,
        trials,
        ReportScope::Fresh(500),
        eps,
    );
    let cli = one_round_estimates(CollectorMode::Client, trials, ReportScope::Fresh(500), eps);
    let (m_a, m_c) = (mean(&agg), mean(&cli));
    assert!((m_a - 0.7).abs() < 0.03, "aggregate mean {m_a}");
    assert!((m_c - 0.7).abs() < 0.03, "client mean {m_c}");
    let (v_a, v_c) = (sample_variance(&agg), sample_variance(&cli));
    let ratio = v_a / v_c;
    assert!(
        (0.6..1.6).contains(&ratio),
        "variance mismatch: aggregate {v_a} vs client {v_c}"
    );
}

#[test]
fn end_to_end_error_matches_across_backends() {
    // Same mechanism, same stream, both backends, several seeds: the
    // mean MRE must agree within sampling tolerance.
    let dataset = Dataset::Sin {
        population: 3_000,
        len: 30,
        a: 0.05,
        b: 0.05,
        h: 0.075,
    };
    let stream = MaterializedStream::from_dataset(&dataset, 17);
    let truth = stream.frequency_matrix();
    let config = MechanismConfig::new(1.0, 6, 2, 3_000);

    let mre_with = |mode: CollectorMode, seed: u64| {
        let mut mech = MechanismKind::Lpa.build(&config).unwrap();
        let out = run_on_source(mech.as_mut(), Box::new(stream.replay()), 30, mode, seed).unwrap();
        ldp_metrics::mre(
            &out.frequency_matrix(),
            &truth,
            ldp_metrics::DEFAULT_MRE_FLOOR,
        )
    };
    let seeds: Vec<u64> = (0..12).collect();
    let agg: Vec<f64> = seeds
        .iter()
        .map(|&s| mre_with(CollectorMode::Aggregate, s))
        .collect();
    let cli: Vec<f64> = seeds
        .iter()
        .map(|&s| mre_with(CollectorMode::Client, s))
        .collect();
    let (m_a, m_c) = (mean(&agg), mean(&cli));
    assert!(
        (m_a - m_c).abs() / m_c.max(1e-6) < 0.5,
        "backend MRE means diverge: aggregate {m_a} vs client {m_c}"
    );
}

#[test]
fn aggregate_variance_matches_closed_form() {
    // The sampled estimator's variance must track Eq. (2) — the quantity
    // every adaptive decision in the system relies on.
    let eps = 1.0;
    let trials = 600;
    let est = one_round_estimates(CollectorMode::Aggregate, trials, ReportScope::All, eps);
    let emp = sample_variance(&est);
    let oracle = ldp_fo::build_oracle(ldp_fo::FoKind::Grr, eps, 2).unwrap();
    let theory = oracle.cell_variance(2000, 0.7);
    let rel = (emp - theory).abs() / theory;
    assert!(
        rel < 0.25,
        "empirical variance {emp} vs Eq.(2) {theory} (rel {rel})"
    );
}
