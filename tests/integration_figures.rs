//! Figure-shape assertions: the paper's qualitative claims must hold on
//! quick-scale reruns of the experiment harness.
//!
//! These are the "does the reproduction reproduce" tests: each asserts
//! an ordering or trend the paper's evaluation reports, on the same
//! grids the `repro` binary runs (shrunk via `RunScale::Quick`-style
//! parameters, with fixed seeds).

use ldp_bench::experiments::ExperimentCtx;
use ldp_bench::scale::RunScale;
use ldp_bench::spec::RunSpec;
use ldp_ids::MechanismKind;
use ldp_stream::Dataset;

fn ctx() -> ExperimentCtx {
    ExperimentCtx::new(RunScale::Quick).with_seeds(vec![11, 23])
}

fn sin_dataset(population: u64, len: usize, b: f64) -> Dataset {
    Dataset::Sin {
        population,
        len,
        a: 0.05,
        b,
        h: 0.075,
    }
}

/// Fig. 4's headline: population division beats budget division, at
/// every ε, by a wide margin.
#[test]
fn population_division_dominates_budget_division() {
    let ctx = ctx();
    let dataset = sin_dataset(50_000, 100, 0.05);
    let series = ctx.sweep(
        &[MechanismKind::Lbu, MechanismKind::Lpu],
        &[0.5, 1.0, 2.0],
        |mech, eps, seed| {
            let mut s = RunSpec::new(dataset.clone(), mech, eps, 20, seed);
            s.len = 100;
            s
        },
        |out| out.error.mre,
    );
    let (lbu, lpu) = (&series[0], &series[1]);
    assert!(
        lpu.dominates_below(lbu),
        "LPU {:?} must dominate LBU {:?}",
        lpu.ys(),
        lbu.ys()
    );
    // And not marginally: the paper shows roughly an order of magnitude.
    for (b, p) in lbu.points.iter().zip(&lpu.points) {
        assert!(
            p.y * 3.0 < b.y,
            "at eps={}: LPU {} not ≪ LBU {}",
            b.x,
            p.y,
            b.y
        );
    }
}

/// Fig. 4 trend: MRE decreases with ε for every mechanism.
#[test]
fn mre_decreases_with_epsilon() {
    let ctx = ctx();
    let dataset = sin_dataset(50_000, 100, 0.05);
    let series = ctx.sweep(
        &MechanismKind::ALL,
        &[0.5, 2.5],
        |mech, eps, seed| {
            let mut s = RunSpec::new(dataset.clone(), mech, eps, 20, seed);
            s.len = 100;
            s
        },
        |out| out.error.mre,
    );
    for s in &series {
        let first = s.points.first().unwrap().y;
        let last = s.points.last().unwrap().y;
        if s.label == "lsp" {
            // LSP's error is dominated by the ε-independent approximation
            // drift (c_t − c_l)²; the paper's Fig. 4 shows it nearly flat.
            assert!(
                last < first * 1.35,
                "lsp: MRE should stay roughly flat in epsilon ({first} -> {last})"
            );
        } else {
            assert!(
                last < first * 1.05,
                "{}: MRE did not fall with epsilon ({first} -> {last})",
                s.label
            );
        }
    }
}

/// Fig. 5 trend: MRE grows with w for the uniform baselines (fewer
/// resources per timestamp).
#[test]
fn mre_grows_with_window_for_uniform_methods() {
    let ctx = ctx();
    let dataset = sin_dataset(50_000, 150, 0.05);
    let series = ctx.sweep(
        &[MechanismKind::Lbu, MechanismKind::Lpu],
        &[10.0, 50.0],
        |mech, w, seed| {
            let mut s = RunSpec::new(dataset.clone(), mech, 1.0, w as usize, seed);
            s.len = 150;
            s
        },
        |out| out.error.mre,
    );
    for s in &series {
        let at10 = s.points[0].y;
        let at50 = s.points[1].y;
        assert!(
            at50 > at10,
            "{}: MRE should grow with w ({at10} -> {at50})",
            s.label
        );
    }
}

/// Fig. 6c: error of the data-dependent methods grows with stream
/// fluctuation.
#[test]
fn adaptive_error_grows_with_fluctuation() {
    let ctx = ctx();
    let series = ctx.sweep(
        &[MechanismKind::Lpa],
        &[0.001, 0.016],
        |mech, q_std, seed| {
            let dataset = Dataset::Lns {
                population: 50_000,
                len: 100,
                p0: 0.05,
                q_std,
            };
            let mut s = RunSpec::new(dataset, mech, 1.0, 20, seed);
            s.len = 100;
            s
        },
        |out| out.error.mre,
    );
    let calm = series[0].points[0].y;
    let wild = series[0].points[1].y;
    assert!(
        wild > calm,
        "LPA error should grow with fluctuation: {calm} -> {wild}"
    );
}

/// Fig. 7's headline: LSP has excellent MRE but poor detection — its
/// AUC falls below LPA's on a moving stream.
#[test]
fn lsp_detects_worse_than_lpa() {
    let ctx = ctx();
    // A clearly moving stream (fast sinusoid) where approximations lag.
    let dataset = sin_dataset(100_000, 150, 0.1);
    let series = ctx.sweep(
        &[MechanismKind::Lsp, MechanismKind::Lpa],
        &[1.0],
        |mech, eps, seed| {
            let mut s = RunSpec::new(dataset.clone(), mech, eps, 30, seed);
            s.len = 150;
            s
        },
        |out| out.auc,
    );
    let (lsp, lpa) = (series[0].points[0].y, series[1].points[0].y);
    assert!(
        lpa > lsp,
        "LPA AUC {lpa} should beat LSP AUC {lsp} on a moving stream"
    );
}

/// Table 2 orderings at (ε = 1, w = 20): LBU = 1 < LBA < LBD (budget
/// family) and LPA < LPD ≤ LPU = LSP = 1/w (population family).
#[test]
fn table2_cfpu_orderings() {
    let ctx = ctx();
    let dataset = sin_dataset(50_000, 100, 0.05);
    let series = ctx.sweep(
        &MechanismKind::ALL,
        &[1.0],
        |mech, eps, seed| {
            let mut s = RunSpec::new(dataset.clone(), mech, eps, 20, seed);
            s.len = 100;
            s
        },
        |out| out.cfpu,
    );
    let get = |kind: MechanismKind| {
        series
            .iter()
            .find(|s| s.label == kind.name())
            .unwrap()
            .points[0]
            .y
    };
    let (lbu, lsp, lbd, lba) = (
        get(MechanismKind::Lbu),
        get(MechanismKind::Lsp),
        get(MechanismKind::Lbd),
        get(MechanismKind::Lba),
    );
    let (lpu, lpd, lpa) = (
        get(MechanismKind::Lpu),
        get(MechanismKind::Lpd),
        get(MechanismKind::Lpa),
    );
    assert!((lbu - 1.0).abs() < 1e-9);
    assert!((lsp - 0.05).abs() < 1e-9);
    assert!((lpu - 0.05).abs() < 1e-9);
    assert!(lbd > 1.0 && lba > 1.0, "adaptive budget methods pay M1+M2");
    assert!(lpd < lpu + 1e-12, "LPD {lpd} ≤ LPU {lpu}");
    assert!(lpa < lpu, "LPA {lpa} < LPU {lpu}");
    // The families sit ~w apart.
    assert!(lpu * 10.0 < lbu);
}

/// Price-of-locality sanity: centralized BD beats its local counterpart
/// LBD by a wide margin at the same ε.
#[test]
fn cdp_beats_ldp_at_same_budget() {
    use ldp_cdp::{run_cdp, CdpKind};
    use rand::SeedableRng;

    let ctx = ctx();
    let dataset = sin_dataset(50_000, 100, 0.05);
    let stream = ctx.streams.get(&dataset, 11, 100);
    let truth = stream.frequency_matrix();

    let mut cdp = CdpKind::Bd.build(1.0, 20, 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let released = run_cdp(cdp.as_mut(), &mut stream.replay(), 100, &mut rng);
    let cdp_mre = ldp_metrics::mre(&released, &truth, ldp_metrics::DEFAULT_MRE_FLOOR);

    let mut spec = RunSpec::new(dataset, MechanismKind::Lbd, 1.0, 20, 11);
    spec.len = 100;
    let ldp_mre = spec.run_on(&stream).error.mre;

    assert!(
        cdp_mre * 2.0 < ldp_mre,
        "CDP BD ({cdp_mre}) should beat LDP LBD ({ldp_mre}) clearly"
    );
}
