//! Session-lifecycle sequencing properties of the `IngestService`:
//! arbitrary interleavings of `create_session` / `open_round` / `submit`
//! / `submit_batch` / `close_round` / `end_session` — including calls on
//! ended sessions, stale rounds, and out-of-order sequence numbers —
//! never panic and always yield the documented typed errors. The same
//! interleaving is driven against an in-memory and a durable service in
//! lockstep, which must agree on every outcome.

use ldp_fo::{FoKind, Report};
use ldp_ids::protocol::UserResponse;
use ldp_ids::CoreError;
use ldp_service::{IngestService, ServiceConfig, SessionId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const DOMAIN: usize = 3;

/// One lifecycle call, with enough slack in its parameters to generate
/// both valid and invalid sequencing.
#[derive(Debug, Clone)]
enum Op {
    Create,
    Open,
    /// Submit one response whose round id is the open round shifted by
    /// `round_skew` (0 = valid, anything else = stale).
    Submit {
        round_skew: u64,
        refuse: bool,
    },
    /// Submit a delta of `n` responses at the session's expected
    /// sequence number shifted by `seq_skew` (0 = valid, negative space
    /// is modelled by re-sending earlier numbers).
    SubmitBatch {
        n: usize,
        seq_skew: i64,
    },
    Close,
    End,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        4 => Just(Op::Open),
        6 => (0u64..3, any::<bool>()).prop_map(|(round_skew, refuse)| Op::Submit {
            round_skew,
            refuse
        }),
        4 => (1usize..40, -2i64..3).prop_map(|(n, seq_skew)| Op::SubmitBatch { n, seq_skew }),
        4 => Just(Op::Close),
        2 => Just(Op::End),
    ]
}

fn response(round: u64, i: usize, refuse: bool) -> UserResponse {
    if refuse {
        UserResponse::Refused {
            round,
            requested: 1.0,
            available: 0.0,
        }
    } else {
        UserResponse::Report {
            round,
            report: Report::Grr((i as u32 * 5 + 1) % DOMAIN as u32),
        }
    }
}

/// The flat outcome of one call, comparable across service flavours.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ok,
    OkEstimate(Vec<u64>, u64),
    Err(CoreError),
}

fn durable_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ldp_lifecycle_prop_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive `ops` against `svc`, asserting each call's result against a
/// tiny reference model of the session lifecycle, and return the flat
/// outcome trace.
fn drive(svc: &IngestService, ops: &[Op]) -> Vec<Outcome> {
    let mut outcomes = Vec::with_capacity(ops.len());
    // The model: which session is current, whether it still exists,
    // which round is open, and the next round/sequence numbers.
    let mut session = svc.create_session().expect("initial session");
    let mut alive = true;
    let mut open: Option<u64> = None;
    let mut next_round: u64 = 0;
    let mut next_seq: u64 = 0;
    let mut submitted: usize = 0;

    for op in ops {
        let outcome = match op {
            Op::Create => {
                let id = svc.create_session().expect("create never fails in-process");
                session = id;
                alive = true;
                open = None;
                next_round = 0;
                next_seq = 0;
                Outcome::Ok
            }
            Op::Open => {
                let result = svc.open_round(session, 0, FoKind::Grr, 1.0, DOMAIN);
                match (alive, open) {
                    (false, _) => Outcome::Err(result.expect_err("ended session must error")),
                    (true, Some(round)) => {
                        let err = result.expect_err("double open must error");
                        assert_eq!(
                            err,
                            CoreError::SessionBusy {
                                session: session.raw(),
                                round
                            }
                        );
                        Outcome::Err(err)
                    }
                    (true, None) => {
                        let request = result.expect("valid open");
                        assert_eq!(request.round, next_round);
                        open = Some(next_round);
                        next_round += 1;
                        Outcome::Ok
                    }
                }
            }
            Op::Submit { round_skew, refuse } => {
                let round = open.unwrap_or(0) + round_skew;
                let result = svc.submit(session, response(round, submitted, *refuse));
                match (alive, open) {
                    (false, _) => Outcome::Err(result.expect_err("ended session must error")),
                    (true, None) => {
                        let err = result.expect_err("no open round must error");
                        assert_eq!(err, CoreError::NoOpenRound);
                        Outcome::Err(err)
                    }
                    (true, Some(expected)) if round != expected => {
                        let err = result.expect_err("stale round must error");
                        assert_eq!(
                            err,
                            CoreError::StaleRound {
                                expected,
                                got: round
                            }
                        );
                        Outcome::Err(err)
                    }
                    (true, Some(_)) => {
                        result.expect("valid submit");
                        next_seq += 1;
                        submitted += 1;
                        Outcome::Ok
                    }
                }
            }
            Op::SubmitBatch { n, seq_skew } => {
                let seq = next_seq.saturating_add_signed(*seq_skew);
                let round = open.unwrap_or(0);
                let responses: Vec<UserResponse> =
                    (0..*n).map(|i| response(round, i, false)).collect();
                let result = svc.submit_batch_at(session, seq, responses);
                match (alive, open) {
                    (false, _) => Outcome::Err(result.expect_err("ended session must error")),
                    _ if seq < next_seq => {
                        // Replay of an already-acknowledged delta: no-op.
                        result.expect("duplicate delta is acknowledged");
                        Outcome::Ok
                    }
                    _ if seq > next_seq => {
                        let err = result.expect_err("future delta must error");
                        assert_eq!(
                            err,
                            CoreError::SequenceGap {
                                expected: next_seq,
                                got: seq
                            }
                        );
                        Outcome::Err(err)
                    }
                    (true, None) => {
                        let err = result.expect_err("no open round must error");
                        assert_eq!(err, CoreError::NoOpenRound);
                        Outcome::Err(err)
                    }
                    (true, Some(_)) => {
                        result.expect("valid delta");
                        next_seq += 1;
                        submitted += n;
                        Outcome::Ok
                    }
                }
            }
            Op::Close => {
                let result = svc.close_round(session);
                match (alive, open) {
                    (false, _) => Outcome::Err(result.expect_err("ended session must error")),
                    (true, None) => {
                        let err = result.expect_err("no open round must error");
                        assert_eq!(err, CoreError::NoOpenRound);
                        Outcome::Err(err)
                    }
                    (true, Some(_)) => {
                        let estimate = result.expect("valid close");
                        open = None;
                        Outcome::OkEstimate(
                            estimate.frequencies.iter().map(|f| f.to_bits()).collect(),
                            estimate.reporters,
                        )
                    }
                }
            }
            Op::End => {
                let result = svc.end_session(session);
                match (alive, open) {
                    (false, _) => Outcome::Err(result.expect_err("ended session must error")),
                    (true, Some(round)) => {
                        let err = result.expect_err("busy session must error");
                        assert_eq!(
                            err,
                            CoreError::SessionBusy {
                                session: session.raw(),
                                round
                            }
                        );
                        Outcome::Err(err)
                    }
                    (true, None) => {
                        result.expect("valid end");
                        alive = false;
                        Outcome::Ok
                    }
                }
            }
        };
        // Every error must be one of the documented lifecycle errors —
        // never a panic, never an unrelated variant.
        if let Outcome::Err(err) = &outcome {
            assert!(
                matches!(
                    err,
                    CoreError::UnknownSession { .. }
                        | CoreError::SessionBusy { .. }
                        | CoreError::NoOpenRound
                        | CoreError::StaleRound { .. }
                        | CoreError::SequenceGap { .. }
                ),
                "undocumented lifecycle error: {err:?}"
            );
        }
        outcomes.push(outcome);
    }
    // Leave no round open so worker shutdown is clean.
    if alive && open.is_some() {
        svc.close_round(session).expect("drain open round");
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving yields typed errors (no panic), and the durable
    /// service agrees with the in-memory one on every single outcome —
    /// including estimate bits.
    #[test]
    fn lifecycle_interleavings_never_panic_and_flavours_agree(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        shards in 1usize..=4,
        batch_size in 1usize..=24,
    ) {
        let config = ServiceConfig::with_threads(shards)
            .with_batch_size(batch_size)
            .with_snapshot_every(7);

        let in_memory = IngestService::new(config);
        let memory_trace = drive(&in_memory, &ops);

        let dir = durable_dir();
        let durable = IngestService::open(config, &dir).expect("open durable");
        let durable_trace = drive(&durable, &ops);
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(memory_trace, durable_trace);
    }

    /// Calls on a session that was never created are always
    /// `UnknownSession`, for every entry point.
    #[test]
    fn ghost_sessions_always_yield_unknown_session(raw in 1u64..1000) {
        let svc = IngestService::new(ServiceConfig::with_threads(1));
        let _real = svc.create_session().unwrap(); // id 0; `raw` stays unknown
        let ghost = SessionId::from_raw(raw);
        let expected = CoreError::UnknownSession { session: raw };
        prop_assert_eq!(
            svc.open_round(ghost, 0, FoKind::Grr, 1.0, DOMAIN).unwrap_err(),
            expected.clone()
        );
        prop_assert_eq!(
            svc.submit(ghost, response(0, 0, false)).unwrap_err(),
            expected.clone()
        );
        prop_assert_eq!(
            svc.submit_batch(ghost, vec![response(0, 0, false)]).unwrap_err(),
            expected.clone()
        );
        prop_assert_eq!(svc.close_round(ghost).unwrap_err(), expected.clone());
        prop_assert_eq!(svc.refusals(ghost).unwrap_err(), expected.clone());
        prop_assert_eq!(svc.epsilon_spent(ghost).unwrap_err(), expected.clone());
        prop_assert_eq!(svc.end_session(ghost).unwrap_err(), expected);
    }
}
