//! Privacy-invariant property tests.
//!
//! Theorems 5.3 and 6.2 say the seven mechanisms satisfy w-event ε-LDP.
//! The implementation enforces those invariants at runtime in three
//! independent places, and these tests drive randomized streams and
//! configurations through all of them:
//!
//! * the mechanisms' own `BudgetLedger` (panics on window over-spend);
//! * the collectors' fresh-user accounting (errors on double booking);
//! * the *clients'* ledgers in the protocol driver (refuse over-budget
//!   requests) — the device-side guarantee that holds even against a
//!   buggy server.

use ldp_ids::runner::{run_on_source, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_stream::source::ReplaySource;
use ldp_stream::TrueHistogram;
use proptest::prelude::*;

/// A random stream of `len` histograms over `d` cells, each row an
/// arbitrary composition of `population`.
fn arb_stream(population: u64, d: usize, len: usize) -> impl Strategy<Value = Vec<TrueHistogram>> {
    proptest::collection::vec(proptest::collection::vec(1u64..=100, d), len..=len).prop_map(
        move |weight_rows| {
            weight_rows
                .into_iter()
                .map(|weights| {
                    // Largest-remainder split of `population` by weights.
                    let total: u64 = weights.iter().sum();
                    let mut counts: Vec<u64> =
                        weights.iter().map(|&w| population * w / total).collect();
                    let mut assigned: u64 = counts.iter().sum();
                    let mut i = 0;
                    while assigned < population {
                        counts[i % d] += 1;
                        assigned += 1;
                        i += 1;
                    }
                    TrueHistogram::new(counts)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mechanism on any volatile stream survives the aggregate
    /// collector's accounting: no pool exhaustion, no ledger panic.
    #[test]
    fn aggregate_accounting_holds_for_all_mechanisms(
        seq in arb_stream(4_000, 3, 40),
        w in 1usize..=12,
        eps in 0.1f64..4.0,
        kind_idx in 0usize..7,
        seed in 0u64..1000,
    ) {
        let kind = MechanismKind::ALL[kind_idx];
        let config = MechanismConfig::new(eps, w, 3, 4_000);
        let mut mech = kind.build(&config).unwrap();
        let source = ReplaySource::new("prop", seq);
        let result = run_on_source(
            mech.as_mut(),
            Box::new(source),
            40,
            CollectorMode::Aggregate,
            seed,
        ).unwrap();
        prop_assert_eq!(result.releases.len(), 40);
    }

    /// The same through real clients: every device's own ledger accepts
    /// every request the mechanisms make — zero refusals.
    #[test]
    fn clients_never_refuse_correct_mechanisms(
        seq in arb_stream(600, 2, 24),
        w in 1usize..=6,
        eps in 0.1f64..3.0,
        kind_idx in 0usize..7,
        seed in 0u64..1000,
    ) {
        let kind = MechanismKind::ALL[kind_idx];
        let config = MechanismConfig::new(eps, w, 2, 600);
        let mut mech = kind.build(&config).unwrap();
        let source = ReplaySource::new("prop", seq);
        let result = run_on_source(
            mech.as_mut(),
            Box::new(source),
            24,
            CollectorMode::Client,
            seed,
        );
        prop_assert!(result.is_ok(), "client run failed: {:?}", result.err());
    }

    /// Population-division communication stays within the §6.3.3 bound:
    /// asymptotically 1/w; for a finite run of T steps, each w-window
    /// spends at most N users, so CFPU ≤ ⌈T/w⌉·w/(w·T) = ⌈T/w⌉/T.
    #[test]
    fn population_cfpu_bounded_by_inverse_w(
        seq in arb_stream(4_000, 3, 40),
        w in 2usize..=10,
        eps in 0.25f64..2.5,
        seed in 0u64..1000,
    ) {
        let steps = 40usize;
        let bound = steps.div_ceil(w) as f64 / steps as f64;
        for kind in MechanismKind::POPULATION_DIVISION {
            let config = MechanismConfig::new(eps, w, 3, 4_000);
            let mut mech = kind.build(&config).unwrap();
            let source = ReplaySource::new("prop", seq.clone());
            let result = run_on_source(
                mech.as_mut(),
                Box::new(source),
                steps,
                CollectorMode::Aggregate,
                seed,
            ).unwrap();
            prop_assert!(
                result.cfpu <= bound + 1e-9,
                "{} CFPU {} exceeds ceil(T/w)/T = {}", kind, result.cfpu, bound
            );
        }
    }

    /// Budget-division communication is 1 (plus publication surcharge
    /// for the adaptive pair, bounded by 2).
    #[test]
    fn budget_cfpu_in_expected_band(
        seq in arb_stream(4_000, 2, 30),
        w in 2usize..=10,
        seed in 0u64..1000,
    ) {
        for kind in MechanismKind::BUDGET_DIVISION {
            let config = MechanismConfig::new(1.0, w, 2, 4_000);
            let mut mech = kind.build(&config).unwrap();
            let source = ReplaySource::new("prop", seq.clone());
            let result = run_on_source(
                mech.as_mut(),
                Box::new(source),
                30,
                CollectorMode::Aggregate,
                seed,
            ).unwrap();
            prop_assert!(
                result.cfpu >= 1.0 - 1e-9 && result.cfpu <= 2.0 + 1e-9,
                "{} CFPU {}", kind, result.cfpu
            );
        }
    }
}

/// A deliberately broken schedule must be *refused by clients*, not
/// silently executed — the device-side guarantee.
#[test]
fn broken_schedule_is_refused_by_clients() {
    use ldp_ids::collector::{ReportScope, RoundCollector};
    use ldp_ids::protocol::ClientCollector;
    use ldp_ids::CoreError;
    use ldp_stream::source::ConstantSource;

    let source = ConstantSource::new(TrueHistogram::new(vec![300, 300]));
    let config = MechanismConfig::new(1.0, 4, 2, 600);
    let mut collector = ClientCollector::new(Box::new(source), &config, 5);
    collector.begin_step().unwrap();
    // Spend the full window budget at once…
    collector.collect(ReportScope::All, 1.0).unwrap();
    // …then ask for more within the same window.
    collector.begin_step().unwrap();
    let err = collector.collect(ReportScope::All, 0.5).unwrap_err();
    assert!(matches!(err, CoreError::ClientRefused { .. }), "{err}");
}
