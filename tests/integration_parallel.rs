//! Shard/sequential equivalence: the parallel ingestion service must be
//! a drop-in replacement for the in-process `AggregationServer`.
//!
//! Support-count folding is commutative integer addition and client
//! perturbation stays on the driving thread, so the sharded service is
//! required to produce **bit-identical** support counts and estimates to
//! the sequential path — at any shard count, any batch size, and any
//! partition of the response stream. These property tests pin that
//! guarantee at three levels: raw shard accumulators, the ingestion
//! service, and a full protocol collector.

use ldp_fo::{build_oracle, FoKind, OracleHandle};
use ldp_ids::collector::{ReportScope, RoundCollector, RoundEstimate};
use ldp_ids::protocol::{AggregationServer, ClientCollector, UserResponse};
use ldp_ids::MechanismConfig;
use ldp_service::{
    IngestService, ParallelCollector, RoundKey, ServiceConfig, SessionId, ShardAccumulator,
    ShardTally,
};
use ldp_stream::source::ConstantSource;
use ldp_stream::TrueHistogram;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Shard counts the satellite spec pins: degenerate, small, and wide.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bit_identical(a: &RoundEstimate, b: &RoundEstimate, what: &str) {
    assert_eq!(a.reporters, b.reporters, "{what}: reporters differ");
    assert_eq!(
        a.frequencies.len(),
        b.frequencies.len(),
        "{what}: domain sizes differ"
    );
    for (i, (x, y)) in a.frequencies.iter().zip(&b.frequencies).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: cell {i} differs ({x} vs {y})"
        );
    }
}

/// A seeded, mixed response stream: perturbed reports with a sprinkle of
/// refusals, exactly what an aggregation backend sees on the wire.
fn seeded_responses(oracle: &OracleHandle, values: &[u32], seed: u64) -> Vec<UserResponse> {
    let mut rng = StdRng::seed_from_u64(seed);
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % 11 == 10 {
                UserResponse::Refused {
                    round: 0,
                    requested: 1.0,
                    available: 0.0,
                }
            } else {
                UserResponse::Report {
                    round: 0,
                    report: oracle.perturb(v as usize % oracle.domain_size(), &mut rng),
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Level 1 + 2: for the same response set, (a) round-robin
    /// partitioning over 1/2/8 `ShardAccumulator`s merges to the exact
    /// sequential support counts, and (b) the `IngestService` at 1/2/8
    /// worker threads closes to the bit-identical `AggregationServer`
    /// estimate.
    #[test]
    fn service_matches_sequential_server(
        values in proptest::collection::vec(0u32..6, 1..300),
        domain in 2usize..=6,
        seed in any::<u64>(),
        batch_size in 1usize..=96,
        fo in proptest::sample::select(&FoKind::ALL),
    ) {
        let epsilon = 1.0;
        let oracle = build_oracle(fo, epsilon, domain).unwrap();
        let responses = seeded_responses(&oracle, &values, seed);

        // Sequential reference: the in-process server.
        let mut server = AggregationServer::new();
        server.open_round(0, fo, epsilon, oracle.clone());
        for response in &responses {
            server.submit(response).unwrap();
        }
        let sequential = server.close_round().unwrap();

        // Reference support counts from one shard folding everything.
        let key = RoundKey { session: SessionId::from_raw(0), round: 0 };
        let mut whole = ShardAccumulator::new(key, oracle.clone());
        for response in &responses {
            whole.fold(response);
        }
        let reference = whole.into_tally();
        prop_assert_eq!(
            oracle.estimate(&reference.support, reference.reporters).iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            sequential.frequencies.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        );

        for shards in SHARD_COUNTS {
            // (a) Raw shard accumulators over a round-robin partition.
            let mut accumulators: Vec<ShardAccumulator> = (0..shards)
                .map(|_| ShardAccumulator::new(key, oracle.clone()))
                .collect();
            for (i, response) in responses.iter().enumerate() {
                accumulators[i % shards].fold(response);
            }
            let mut merged = ShardTally::empty(domain);
            for accumulator in accumulators {
                merged.merge(&accumulator.into_tally());
            }
            prop_assert_eq!(&merged.support, &reference.support, "support counts at {} shards", shards);
            prop_assert_eq!(merged.reporters, reference.reporters);
            prop_assert_eq!(merged.refusals, reference.refusals);

            // (b) The full service: worker pool, batching, channels.
            let service = IngestService::new(
                ServiceConfig::with_threads(shards).with_batch_size(batch_size),
            );
            let session = service.create_session().unwrap();
            service.open_round(session, 0, fo, epsilon, domain).unwrap();
            for response in &responses {
                service.submit(session, response.clone()).unwrap();
            }
            let parallel = service.close_round(session).unwrap();
            assert_bit_identical(&parallel, &sequential, &format!("service at {shards} threads"));
            prop_assert_eq!(service.refusals(session).unwrap(), reference.refusals);
        }
    }

    /// Level 3: a full protocol collector — group selection, per-device
    /// perturbation, multi-round lifecycle — driven over the sharded
    /// service agrees bit-for-bit with the sequential `ClientCollector`
    /// at every shard count.
    #[test]
    fn parallel_collector_matches_client_collector(
        counts in proptest::collection::vec(20u64..80, 2..=5),
        seed in any::<u64>(),
        batch_size in 1usize..=64,
        fo in proptest::sample::select(&FoKind::ALL),
    ) {
        let epsilon = 1.0;
        let population: u64 = counts.iter().sum();
        let fresh = population / 4;
        let steps = 3;

        let drive = |collector: &mut dyn RoundCollector| -> Vec<RoundEstimate> {
            let mut estimates = Vec::new();
            for _ in 0..steps {
                // Per-round budgets sized so any w=4 window stays under ε
                // (4·ε/8 from All rounds + ε/4 from one Fresh round).
                collector.begin_step().unwrap();
                estimates.push(collector.collect(ReportScope::All, epsilon / 8.0).unwrap());
                estimates.push(collector.collect(ReportScope::Fresh(fresh), epsilon / 4.0).unwrap());
            }
            estimates
        };

        let config = MechanismConfig::new(epsilon, 4, counts.len(), population).with_fo(fo);
        let source = || Box::new(ConstantSource::new(TrueHistogram::new(counts.clone())));

        let mut sequential = ClientCollector::new(source(), &config, seed);
        let expected = drive(&mut sequential);

        for shards in SHARD_COUNTS {
            let service = Arc::new(IngestService::new(
                ServiceConfig::with_threads(shards).with_batch_size(batch_size),
            ));
            let mut parallel = ParallelCollector::new(source(), &config, seed, service);
            let estimates = drive(&mut parallel);
            prop_assert_eq!(estimates.len(), expected.len());
            for (round, (got, want)) in estimates.iter().zip(&expected).enumerate() {
                assert_bit_identical(got, want, &format!("round {round} at {shards} shards"));
            }
            prop_assert_eq!(parallel.stats(), sequential.stats());
            prop_assert_eq!(parallel.refusals(), sequential.refusals());
        }
    }
}
