//! End-to-end pipeline tests: dataset → mechanism → collector → metrics.
//!
//! Runs every mechanism over every dataset family at reduced scale and
//! checks structural invariants of the full stack (shape, provenance,
//! accounting), not statistical claims — those live in
//! `integration_figures.rs`.

use ldp_bench::scale::SharedStreams;
use ldp_bench::spec::RunSpec;
use ldp_ids::MechanismKind;
use ldp_metrics::StreamError;
use ldp_stream::Dataset;

/// Scaled-down versions of all six paper datasets.
fn small_datasets() -> Vec<Dataset> {
    vec![
        Dataset::Lns {
            population: 20_000,
            len: 60,
            p0: 0.05,
            q_std: 0.0025,
        },
        Dataset::Sin {
            population: 20_000,
            len: 60,
            a: 0.05,
            b: 0.05,
            h: 0.075,
        },
        Dataset::Log {
            population: 20_000,
            len: 60,
            a: 0.25,
            b: 0.05,
        },
        Dataset::Taxi { population: 10_357 },
        Dataset::Foursquare { population: 26_000 },
        Dataset::Taobao { population: 40_000 },
    ]
}

#[test]
fn every_mechanism_runs_on_every_dataset() {
    let streams = SharedStreams::new();
    for dataset in small_datasets() {
        let len = dataset.len().min(60);
        for kind in MechanismKind::ALL {
            let mut spec = RunSpec::new(dataset.clone(), kind, 1.0, 10, 7);
            spec.len = len;
            let stream = streams.get(&dataset, 7, len);
            let out = spec.run_on(&stream);
            assert_eq!(out.steps, len as u64, "{kind} on {}", dataset.name());
            assert!(
                out.error.mre.is_finite() && out.error.mre >= 0.0,
                "{kind} on {}: MRE {}",
                dataset.name(),
                out.error.mre
            );
            assert!(out.cfpu > 0.0, "{kind} on {}", dataset.name());
            if kind.is_population_division() {
                assert!(
                    out.cfpu <= 1.0 / 10.0 + 1e-9,
                    "{kind} population CFPU {} exceeds 1/w",
                    out.cfpu
                );
            } else {
                assert!(
                    (1.0..=2.0 + 1e-9).contains(&out.cfpu),
                    "{kind} budget CFPU {}",
                    out.cfpu
                );
            }
        }
    }
}

#[test]
fn non_adaptive_mechanisms_have_exact_publication_counts() {
    let streams = SharedStreams::new();
    let dataset = small_datasets()[1].clone();
    let len = 60;
    let stream = streams.get(&dataset, 3, len);

    let mut lbu = RunSpec::new(dataset.clone(), MechanismKind::Lbu, 1.0, 10, 3);
    lbu.len = len;
    assert_eq!(lbu.run_on(&stream).publications, len as u64);

    let mut lpu = RunSpec::new(dataset.clone(), MechanismKind::Lpu, 1.0, 10, 3);
    lpu.len = len;
    assert_eq!(lpu.run_on(&stream).publications, len as u64);

    let mut lsp = RunSpec::new(dataset, MechanismKind::Lsp, 1.0, 10, 3);
    lsp.len = len;
    // One sampling step per window of 10 over 60 steps.
    assert_eq!(lsp.run_on(&stream).publications, 6);
}

#[test]
fn mre_responds_to_epsilon() {
    // More budget, less error — across the whole pipeline.
    let streams = SharedStreams::new();
    let dataset = Dataset::Sin {
        population: 50_000,
        len: 80,
        a: 0.05,
        b: 0.05,
        h: 0.075,
    };
    let stream = streams.get(&dataset, 5, 80);
    let mre_at = |eps: f64| {
        let spec = RunSpec::new(dataset.clone(), MechanismKind::Lbu, eps, 10, 5);
        spec.run_on(&stream).error.mre
    };
    let low = mre_at(0.5);
    let high = mre_at(4.0);
    assert!(
        high < low,
        "MRE should fall with epsilon: eps=0.5 -> {low}, eps=4 -> {high}"
    );
}

#[test]
fn stream_error_metrics_are_consistent() {
    // MSE ≤ MAE when per-cell errors ≤ 1 (Jensen direction for values in
    // [0,1]); MRE ≥ MAE with frequencies ≤ 1 and floor 0.001.
    let streams = SharedStreams::new();
    let dataset = small_datasets()[0].clone();
    let stream = streams.get(&dataset, 9, 60);
    let mut spec = RunSpec::new(dataset, MechanismKind::Lpa, 1.0, 10, 9);
    spec.len = 60;
    let StreamError { mre, mae, mse } = spec.run_on(&stream).error;
    assert!(mse <= mae + 1e-12, "mse {mse} vs mae {mae}");
    assert!(mre >= mae - 1e-12, "mre {mre} vs mae {mae}");
}

#[test]
fn runs_are_deterministic_given_seed() {
    let streams = SharedStreams::new();
    for kind in [MechanismKind::Lba, MechanismKind::Lpd] {
        let dataset = small_datasets()[2].clone();
        let mut spec = RunSpec::new(dataset.clone(), kind, 1.0, 8, 21);
        spec.len = 60;
        let stream = streams.get(&dataset, 21, 60);
        let a = spec.run_on(&stream);
        let b = spec.run_on(&stream);
        assert_eq!(a, b, "{kind} must be reproducible");
    }
}

#[test]
fn cfpu_identities_hold_exactly() {
    // CFPU is a deterministic function of the publication schedule, so
    // the §5.4.3/§6.3.3 closed forms must hold *exactly*, not just in
    // expectation.
    let streams = SharedStreams::new();
    let dataset = Dataset::Sin {
        population: 30_000,
        len: 100,
        a: 0.05,
        b: 0.05,
        h: 0.075,
    };
    let (w, steps) = (10usize, 100usize);
    let stream = streams.get(&dataset, 13, steps);

    // LBU: exactly 1.
    let mut lbu = RunSpec::new(dataset.clone(), MechanismKind::Lbu, 1.0, w, 13);
    lbu.len = steps;
    assert!((lbu.run_on(&stream).cfpu - 1.0).abs() < 1e-12);

    // LSP: exactly ceil(T/w)/T; LPU: exactly ⌊N/w⌋/N.
    let mut lsp = RunSpec::new(dataset.clone(), MechanismKind::Lsp, 1.0, w, 13);
    lsp.len = steps;
    let expected_lsp = steps.div_ceil(w) as f64 / steps as f64;
    assert!((lsp.run_on(&stream).cfpu - expected_lsp).abs() < 1e-12);

    let mut lpu = RunSpec::new(dataset.clone(), MechanismKind::Lpu, 1.0, w, 13);
    lpu.len = steps;
    let expected_lpu = (30_000 / w as u64) as f64 / 30_000.0;
    assert!((lpu.run_on(&stream).cfpu - expected_lpu).abs() < 1e-12);

    // LBD/LBA: exactly 1 + publications/steps (every step one M1 round,
    // publication steps add one M2 round over the full population).
    for kind in [MechanismKind::Lbd, MechanismKind::Lba] {
        let mut spec = RunSpec::new(dataset.clone(), kind, 1.0, w, 13);
        spec.len = steps;
        let out = spec.run_on(&stream);
        let expected = 1.0 + out.publications as f64 / steps as f64;
        assert!(
            (out.cfpu - expected).abs() < 1e-12,
            "{kind}: CFPU {} vs 1 + m/T = {expected}",
            out.cfpu
        );
    }
}

#[test]
fn heavy_hitters_survive_ldp_better_under_population_division() {
    // Footnote 2 of §4 end-to-end: derive top-k heavy hitters from the
    // released stream of a skewed large-domain workload and compare
    // precision@k across the two frameworks.
    use ldp_ids::queries::topk_precision;

    let streams = SharedStreams::new();
    let dataset = Dataset::Taobao {
        population: 120_000,
    };
    let len = 60;
    let stream = streams.get(&dataset, 31, len);
    let truth = stream.frequency_matrix();

    // Average over a few collector seeds: at d = 117 and ε = 1 the GRR
    // estimates are extremely noisy, so a single realization's
    // precision@10 swings by ±0.05 and any single-seed threshold is a
    // knife edge against the RNG stream in use.
    let collector_seeds = [7u64, 8, 9];
    let precision_for = |kind: MechanismKind| {
        let mut spec = RunSpec::new(dataset.clone(), kind, 1.0, 10, 31);
        spec.len = len;
        let mut total = 0.0;
        for &collector_seed in &collector_seeds {
            let out_stream = {
                let config = spec.config();
                let mut mech = kind.build(&config).unwrap();
                let result = ldp_ids::runner::run_on_source(
                    mech.as_mut(),
                    Box::new(stream.replay()),
                    len,
                    ldp_ids::runner::CollectorMode::Aggregate,
                    collector_seed,
                )
                .unwrap();
                result.frequency_matrix()
            };
            let k = 10;
            total += out_stream
                .iter()
                .zip(&truth)
                .map(|(est, tru)| topk_precision(est, tru, k))
                .sum::<f64>()
                / len as f64;
        }
        total / collector_seeds.len() as f64
    };

    let lpa = precision_for(MechanismKind::Lpa);
    let lbu = precision_for(MechanismKind::Lbu);
    assert!(
        lpa > lbu,
        "population division should identify heavy hitters better: LPA {lpa} vs LBU {lbu}"
    );
    // Well above the 10/117 ≈ 0.085 random baseline (and ~4× LBU); the
    // absolute level at this (d, ε) sits near 0.45 for any exact
    // sampler, so 0.4 attests substantial recovery with real margin.
    assert!(
        lpa > 0.4,
        "LPA top-10 precision should be substantial: {lpa}"
    );
}
