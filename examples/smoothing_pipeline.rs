//! A production pipeline: LPU + Kalman filtering (paper Remark 3).
//!
//! Remark 3 suggests composing the population-division framework with
//! FAST-style filtering. This example builds that pipeline on the LNS
//! random walk: uniform population division produces an unbiased but
//! noisy release at every timestamp; a per-cell Kalman filter — whose
//! measurement noise is *known in closed form* from each publication's
//! provenance — smooths it at zero privacy cost (post-processing).
//!
//! Run with: `cargo run --release --example smoothing_pipeline`

use ldp_ids::runner::{run_on_materialized, CollectorMode};
use ldp_ids::smoothing::KalmanSmoother;
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::{StreamError, Table};
use ldp_stream::{Dataset, MaterializedStream};

fn main() {
    // The LNS random walk: p_{t+1} = p_t + N(0, Q). Its process noise is
    // exactly the Kalman state model, so the filter's single knob is
    // known too.
    let q_std = 0.0025;
    let dataset = Dataset::Lns {
        population: 200_000,
        len: 400,
        p0: 0.05,
        q_std,
    };
    let stream = MaterializedStream::from_dataset(&dataset, 77);
    let truth = stream.frequency_matrix();
    let config = MechanismConfig::new(1.0, 20, stream.domain().size(), stream.population());

    let mut table = Table::new(vec!["pipeline", "MRE", "MAE", "CFPU"]);
    let smoother = KalmanSmoother::new(q_std * q_std);

    for kind in [MechanismKind::Lpu, MechanismKind::Lpa, MechanismKind::Lbu] {
        let mut mech = kind.build(&config).expect("valid configuration");
        let result = run_on_materialized(mech.as_mut(), &stream, CollectorMode::Aggregate, 6);
        let raw = StreamError::compute(&result.frequency_matrix(), &truth);
        let smoothed_stream = smoother.smooth(&result.releases, &config);
        let smoothed = StreamError::compute(&smoothed_stream, &truth);
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.4}", raw.mre),
            format!("{:.4}", raw.mae),
            format!("{:.4}", result.cfpu),
        ]);
        table.push_row(vec![
            format!("{}+kalman", kind.name()),
            format!("{:.4}", smoothed.mre),
            format!("{:.4}", smoothed.mae),
            format!("{:.4}", result.cfpu),
        ]);
    }
    println!("LNS random walk, eps=1, w=20, Q=({q_std})^2 — filtering is free:\n");
    println!("{}", table.render());
    println!("the filter needs no tuning: measurement noise R = V(eps, n) comes");
    println!("from each publication's provenance (Eq. 2), and Q from the domain.");
}
