//! Taxi density monitoring — the paper's motivating IoT scenario.
//!
//! 10 357 taxis (the T-Drive fleet size) continuously report which of 5
//! city regions they are in; the server maintains a live density map
//! without learning any taxi's trajectory. This example contrasts all
//! seven mechanisms on the simulated fleet and prints the density map
//! quality each achieves.
//!
//! Run with: `cargo run --release --example taxi_density`

use ldp_ids::runner::{run_on_materialized, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::{StreamError, Table};
use ldp_stream::{Dataset, MaterializedStream};

fn main() {
    let dataset = Dataset::taxi();
    println!(
        "simulating {} taxis over {} ten-minute steps, {} regions…",
        dataset.population(),
        dataset.len(),
        dataset.domain_size()
    );
    let stream = MaterializedStream::from_dataset(&dataset, 2008);
    let truth = stream.frequency_matrix();

    let config = MechanismConfig::new(1.0, 20, stream.domain().size(), stream.population());

    let mut table = Table::new(vec!["mechanism", "MRE", "MAE", "publications", "CFPU"]);
    for kind in MechanismKind::ALL {
        let mut mech = kind.build(&config).expect("valid configuration");
        let result = run_on_materialized(mech.as_mut(), &stream, CollectorMode::Aggregate, 9);
        let error = StreamError::compute(&result.frequency_matrix(), &truth);
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.4}", error.mre),
            format!("{:.4}", error.mae),
            format!("{}", result.publications),
            format!("{:.4}", result.cfpu),
        ]);
    }
    println!("\nw-event LDP density map quality (eps=1, w=20):\n");
    println!("{}", table.render());

    // Show the density map at one rush-hour step under the best method.
    let mut lpa = MechanismKind::Lpa.build(&config).unwrap();
    let result = run_on_materialized(lpa.as_mut(), &stream, CollectorMode::Aggregate, 9);
    let t = stream.len() / 2;
    println!("density map at step {t} (true vs LPA release):");
    for (k, &true_f) in truth[t].iter().enumerate() {
        let bar = |f: f64| "#".repeat((f * 100.0).round().max(0.0) as usize);
        println!("  region {k}: true {true_f:>6.3} {}", bar(true_f));
        println!(
            "           lpa  {:>6.3} {}",
            result.releases[t].frequencies[k],
            bar(result.releases[t].frequencies[k].max(0.0))
        );
    }
}
