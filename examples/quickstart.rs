//! Quickstart: release a private frequency histogram stream.
//!
//! A population of 50 000 simulated users holds a binary value that
//! drifts over time (the paper's Sin process). The server wants the
//! frequency histogram at every timestamp; every user wants ε = 1
//! w-event LDP over windows of 20 timestamps. We run the paper's best
//! mechanism (LPA) and compare its releases with the ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use ldp_ids::runner::{run_on_materialized, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::StreamError;
use ldp_stream::{Dataset, MaterializedStream};

fn main() {
    // 1. A data stream. In a deployment this is your users; here it is
    //    the paper's Sin generator at reduced scale.
    let dataset = Dataset::Sin {
        population: 50_000,
        len: 120,
        a: 0.05,
        b: 0.05,
        h: 0.075,
    };
    let stream = MaterializedStream::from_dataset(&dataset, 42);

    // 2. A privacy contract: ε = 1 over every window of w = 20 steps.
    let config = MechanismConfig::new(1.0, 20, stream.domain().size(), stream.population());

    // 3. The mechanism. LPA (Algorithm 4) is the paper's recommended
    //    default: adaptive population absorption.
    let mut mechanism = MechanismKind::Lpa
        .build(&config)
        .expect("valid configuration");

    // 4. Run. The aggregate collector simulates all users exactly.
    let result = run_on_materialized(mechanism.as_mut(), &stream, CollectorMode::Aggregate, 7);

    // 5. Inspect.
    let truth = stream.frequency_matrix();
    let error = StreamError::compute(&result.frequency_matrix(), &truth);
    println!("mechanism      : {}", mechanism.name());
    println!("steps          : {}", result.stats.steps);
    println!("publications   : {}", result.publications);
    println!("mean rel. error: {:.4}", error.mre);
    println!("CFPU           : {:.4} (LBU would be 1.0)", result.cfpu);
    println!();
    println!("  t   true f[1]   released f[1]   provenance");
    for t in (0..stream.len()).step_by(12) {
        let r = &result.releases[t];
        println!(
            "{t:>3}   {:>9.4}   {:>13.4}   {:?}",
            truth[t][1], r.frequencies[1], r.kind
        );
    }
}
