//! Metrics quickstart: a loopback collection server with live
//! observability, scraped three ways while a round runs.
//!
//! One durable tenant is registered in a `TenantRegistry` (which owns a
//! shared `ldp_obs` `MetricsRegistry`), a `NetServer` serves it, and a
//! `MetricsExporter` exposes the same registry as Prometheus text on a
//! second loopback port. A `NetClient` — itself recording into its own
//! metric scope — drives a round, and the example prints:
//!
//! 1. a wire-level stats scrape (`scrape_stats`, what
//!    `ldp-client --stats` does) with no tenant binding;
//! 2. a raw TCP read of the Prometheus endpoint (what
//!    `curl http://…/metrics` against `ldp-server --metrics-addr`
//!    sees);
//! 3. the client's own counters and RPC latency quantiles.
//!
//! Run with: `cargo run --release --example metrics_quickstart`

use ldp_fo::{build_oracle, FoKind};
use ldp_ids::protocol::UserResponse;
use ldp_net::{scrape_stats, ClientOptions, NetClient, NetServer, ServerConfig};
use ldp_obs::{MetricValue, MetricsExporter, MetricsRegistry, Scope};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. A durable tenant: WAL + snapshots under a temp dir, so the
    //    scrape shows real fsync latencies, not zeros.
    let dir = std::env::temp_dir().join(format!("ldp_metrics_qs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let registry = TenantRegistry::new();
    registry
        .register(TenantSpec::durable(
            "sensors",
            ServiceConfig::with_threads(2),
            &dir,
        ))
        .expect("register tenant");

    let server =
        NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).expect("bind loopback");
    // The exporter serves the *same* registry the tenant services and
    // the wire layer record into — one scrape covers every layer.
    let exporter =
        MetricsExporter::start("127.0.0.1:0", registry.metrics()).expect("bind metrics port");
    println!(
        "server on {}, metrics on {}",
        server.addr(),
        exporter.addr()
    );

    // 2. Drive one round. The client records its own RPC latency and
    //    retry counters into a registry we hold, via ClientOptions.
    let client_obs = Arc::new(MetricsRegistry::new());
    let client_scope = Scope::new(Arc::clone(&client_obs), &[("client", "quickstart")]);
    let (fo, epsilon, domain) = (FoKind::Oue, 1.0, 16);
    let oracle = build_oracle(fo, epsilon, domain).expect("valid oracle");
    let mut rng = StdRng::seed_from_u64(42);

    let mut client = NetClient::connect_with(
        server.addr().to_string(),
        "sensors",
        ClientOptions::default().metrics(client_scope),
    )
    .expect("connect");
    let request = client
        .open_round_with(0, fo, epsilon, domain)
        .expect("open round");
    for chunk in 0..10 {
        let batch: Vec<UserResponse> = (0..1_000)
            .map(|i| UserResponse::Report {
                round: request.round,
                report: oracle.perturb((chunk + i) % domain, &mut rng),
            })
            .collect();
        client.submit_batch(batch).expect("submit");
    }
    client.flush().expect("flush");

    // 3a. Wire-level scrape, mid-round, no Hello/tenant binding — the
    //     same frames `ldp-client --stats` sends.
    let (version, samples) = scrape_stats(&server.addr().to_string(), None, Duration::from_secs(5))
        .expect("stats scrape");
    println!("\n-- wire scrape (schema v{version}): service + WAL + admission + frames --");
    for sample in samples.iter().filter(|s| {
        matches!(
            s.name.as_str(),
            "ldp_reports_accumulated_total"
                | "ldp_admission_admitted_total"
                | "ldp_wal_fsync_ns"
                | "ldp_net_frames_in_total"
        )
    }) {
        match &sample.value {
            MetricValue::Counter(v) => println!("  {} {:?} = {v}", sample.name, sample.labels),
            MetricValue::Gauge(v) => println!("  {} {:?} = {v}", sample.name, sample.labels),
            MetricValue::Histogram(h) => println!(
                "  {} {:?}: count={} p50={}ns p99={}ns max={}ns",
                sample.name,
                sample.labels,
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        }
    }

    // 3b. The Prometheus endpoint, as curl would see it.
    let mut stream = TcpStream::connect(exporter.addr()).expect("connect metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: quickstart\r\n\r\n")
        .expect("send scrape");
    let mut exposition = String::new();
    stream.read_to_string(&mut exposition).expect("read scrape");
    println!("\n-- prometheus exposition (excerpt) --");
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("ldp_reports_accumulated") || l.starts_with("ldp_wal_fsync"))
        .take(8)
    {
        println!("  {line}");
    }

    let estimate = client.close_round().expect("close round");
    println!(
        "\nround closed: {} reporters, {} cells",
        estimate.reporters,
        estimate.frequencies.len()
    );

    // 3c. The client's own side of the story, from its scope.
    println!("-- client registry --");
    for sample in client_obs.snapshot() {
        match &sample.value {
            MetricValue::Counter(v) => println!("  {} = {v}", sample.name),
            MetricValue::Gauge(v) => println!("  {} = {v}", sample.name),
            MetricValue::Histogram(h) => println!(
                "  {}: count={} p50={}ns p99={}ns max={}ns",
                sample.name,
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        }
    }

    server.shutdown();
    drop(exporter);
    let _ = std::fs::remove_dir_all(&dir);
}
