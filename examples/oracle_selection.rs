//! Choosing a frequency oracle for your domain size.
//!
//! The paper uses GRR throughout, which is optimal for small domains but
//! degrades linearly in d. This example sweeps domain sizes on a
//! synthetic categorical stream and shows where OUE/OLH take over, plus
//! what the Adaptive selector (Wang et al. crossover d < 3e^eps + 2)
//! picks — guidance for applying LDP-IDS beyond binary streams.
//!
//! Run with: `cargo run --release --example oracle_selection`

use ldp_fo::{build_oracle, FoKind};
use ldp_ids::runner::{run_on_source, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::Table;
use ldp_stream::source::ConstantSource;
use ldp_stream::TrueHistogram;

/// A skewed histogram over d cells for n users.
fn skewed(d: usize, n: u64) -> TrueHistogram {
    let mut counts = vec![0u64; d];
    // Zipf-ish: half the mass on the head.
    let mut remaining = n;
    for (k, c) in counts.iter_mut().enumerate() {
        let share = (remaining / 2).max(1).min(remaining);
        *c = if k + 1 == d { remaining } else { share };
        remaining -= *c;
        if remaining == 0 {
            break;
        }
    }
    TrueHistogram::new(counts)
}

fn main() {
    let n = 200_000u64;
    let eps = 1.0;
    let w = 10;
    let steps = 40;

    println!("LPA mean relative error by oracle and domain size (eps={eps}, w={w}):\n");
    let mut table = Table::new(vec!["d", "grr", "oue", "olh", "adaptive", "picked"]);
    for d in [4usize, 16, 32, 64, 128] {
        let mut row = vec![format!("{d}")];
        for fo in FoKind::ALL {
            let config = MechanismConfig::new(eps, w, d, n).with_fo(fo);
            let mut mech = MechanismKind::Lpa.build(&config).unwrap();
            let source = ConstantSource::new(skewed(d, n));
            let truth = vec![skewed(d, n).frequencies(); steps];
            let result = run_on_source(
                mech.as_mut(),
                Box::new(source),
                steps,
                CollectorMode::Aggregate,
                5,
            )
            .unwrap();
            let mre = ldp_metrics::mre(
                &result.frequency_matrix(),
                &truth,
                ldp_metrics::DEFAULT_MRE_FLOOR,
            );
            row.push(format!("{mre:.4}"));
        }
        // What does the adaptive rule resolve to?
        let resolved = build_oracle(FoKind::Adaptive, eps, d).unwrap().kind();
        row.push(resolved.name().to_string());
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("rule of thumb: GRR while d < 3e^eps + 2 (~10 at eps=1), OUE beyond;");
    println!("OLH matches OUE's error with constant-size reports (12 bytes).");
}
