//! Real-time event monitoring over a private stream (paper §7.4).
//!
//! The server watches the released stream for *above-threshold events* —
//! timestamps where the monitored statistic exceeds
//! δ = 0.75·(max − min) + min — without ever seeing raw data. This
//! example runs the paper's Fig. 7 task on a fast-moving synthetic
//! stream and prints each mechanism's detection quality (ROC/AUC),
//! illustrating the paper's finding that LSP's excellent MRE hides poor
//! responsiveness.
//!
//! Run with: `cargo run --release --example event_monitoring`

use ldp_ids::runner::{run_on_materialized, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::{roc_points, Table};
use ldp_stream::{paper_threshold, Dataset, MaterializedStream, MonitorStat};

fn main() {
    // A sinusoid fast enough that its peaks are genuine "events".
    let dataset = Dataset::Sin {
        population: 100_000,
        len: 300,
        a: 0.05,
        b: 0.1,
        h: 0.075,
    };
    let stream = MaterializedStream::from_dataset(&dataset, 99);
    let truth = stream.frequency_matrix();

    // Ground truth: which steps are above threshold?
    let stat = MonitorStat::Cell(1);
    let true_series = stat.series(&truth);
    let delta = paper_threshold(&true_series);
    let labels: Vec<bool> = true_series.iter().map(|&s| s > delta).collect();
    let positives = labels.iter().filter(|&&l| l).count();
    println!(
        "threshold delta = {delta:.4}; {positives} of {} steps are true events",
        labels.len()
    );

    let config = MechanismConfig::new(1.0, 50, stream.domain().size(), stream.population());
    let mut table = Table::new(vec!["mechanism", "AUC", "TPR@FPR<=0.1", "MRE"]);
    for kind in [
        MechanismKind::Lba,
        MechanismKind::Lsp,
        MechanismKind::Lpu,
        MechanismKind::Lpd,
        MechanismKind::Lpa,
    ] {
        let mut mech = kind.build(&config).expect("valid configuration");
        let result = run_on_materialized(mech.as_mut(), &stream, CollectorMode::Aggregate, 4);
        let released = result.frequency_matrix();
        let scores = stat.series(&released);
        let curve = roc_points(&scores, &labels);
        // Best TPR while keeping FPR at or below 10%.
        let tpr_at = curve
            .points
            .iter()
            .filter(|p| p.fpr <= 0.1)
            .map(|p| p.tpr)
            .fold(0.0f64, f64::max);
        let mre = ldp_metrics::mre(&released, &truth, ldp_metrics::DEFAULT_MRE_FLOOR);
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.3}", curve.auc),
            format!("{:.3}", tpr_at),
            format!("{:.4}", mre),
        ]);
    }
    println!("\nabove-threshold detection, eps=1, w=50:\n");
    println!("{}", table.render());
    println!("note how LSP can have the lowest MRE yet the weakest detection:");
    println!("its approximations lag exactly at the moments that matter.");
}
