//! Network quickstart: a multi-tenant collection server and a client,
//! in one process over loopback.
//!
//! Two tenants (say, two apps sharing a collection fleet) are
//! registered in a `TenantRegistry`, a `NetServer` serves both on one
//! ephemeral port, and a `NetClient` drives a full round for each:
//! open → pipelined submit deltas → close. To show that the wire adds
//! no numeric error, the same perturbed responses are replayed through
//! the in-process sequential `AggregationServer` and the estimates are
//! compared bit for bit. A mid-round disconnect-and-recover on the
//! second tenant shows the replay path: the result is still exact.
//!
//! Run with: `cargo run --release --example network_quickstart`

use ldp_fo::{build_oracle, FoKind};
use ldp_ids::protocol::{AggregationServer, UserResponse};
use ldp_net::{NetClient, NetServer, ServerConfig};
use ldp_service::{ServiceConfig, TenantRegistry, TenantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. One service per tenant, both behind one listener. Tenants are
    //    fully isolated: own worker pool, own budget bookkeeping.
    let registry = TenantRegistry::new();
    for tenant in ["metrics-app", "telemetry-app"] {
        registry
            .register(TenantSpec::in_memory(
                tenant,
                ServiceConfig::with_threads(2),
            ))
            .expect("register tenant");
    }
    let server =
        NetServer::start("127.0.0.1:0", &registry, ServerConfig::default()).expect("bind loopback");
    let addr = server.addr().to_string();
    println!("serving {:?} on {addr}", registry.tenant_ids());

    // 2. A round's worth of client-side-perturbed reports. On a real
    //    deployment each device perturbs its own value; the server side
    //    only ever sees the perturbed stream.
    let (fo, epsilon, domain) = (FoKind::Grr, 1.0, 8);
    let oracle = build_oracle(fo, epsilon, domain).expect("valid oracle");
    let mut rng = StdRng::seed_from_u64(7);
    let responses: Vec<UserResponse> = (0..10_000)
        .map(|i| UserResponse::Report {
            round: 0,
            report: oracle.perturb(i % domain, &mut rng),
        })
        .collect();

    // 3. The in-process reference: what a sequential, no-network
    //    aggregation of the same responses would publish.
    let mut reference = AggregationServer::new();
    reference.open_round(0, fo, epsilon, oracle.clone());
    for response in &responses {
        reference.submit(response).expect("reference submit");
    }
    let expected = reference.close_round().expect("reference close");

    // 4. Tenant one: the straight path. Deltas are pipelined — up to a
    //    window of unacknowledged SubmitBatch frames ride the socket.
    let mut client = NetClient::connect(addr.clone(), "metrics-app").expect("connect");
    client
        .open_round_with(0, fo, epsilon, domain)
        .expect("open round");
    for delta in responses.chunks(500) {
        client.submit_batch(delta.to_vec()).expect("submit");
    }
    let over_the_wire = client.close_round().expect("close round");

    // 5. Tenant two: same traffic, but the connection dies mid-round
    //    with deltas still unacknowledged. recover() resumes the
    //    session and replays what the server lacks; duplicates are
    //    no-ops server-side.
    let mut flaky = NetClient::connect(addr, "telemetry-app")
        .expect("connect")
        .with_window(64);
    flaky
        .open_round_with(0, fo, epsilon, domain)
        .expect("open round");
    let mut chunks = responses.chunks(500);
    for delta in chunks.by_ref().take(10) {
        flaky.submit_batch(delta.to_vec()).expect("submit");
    }
    flaky.disconnect(); // the wire drops…
    flaky.recover().expect("resume session"); // …and the round survives
    for delta in chunks {
        flaky.submit_batch(delta.to_vec()).expect("submit");
    }
    let after_recovery = flaky.close_round().expect("close round");

    // 6. Both network estimates are bit-identical to the reference.
    for (label, estimate) in [("wire", &over_the_wire), ("recovered", &after_recovery)] {
        assert_eq!(estimate.reporters, expected.reporters);
        for (i, (a, b)) in estimate
            .frequencies
            .iter()
            .zip(&expected.frequencies)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: cell {i} differs");
        }
        println!(
            "{label}: {} reporters, bit-identical to in-process",
            estimate.reporters
        );
    }
    println!(
        "first cells: {:?}",
        &over_the_wire.frequencies[..4.min(over_the_wire.frequencies.len())]
    );
    server.shutdown();
}
