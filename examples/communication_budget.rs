//! Communication budgeting for constrained devices (paper §5.4.3/§6.3.3).
//!
//! Population division doesn't just improve utility — it cuts uplink
//! traffic by ~w×, which decides battery life for LPWAN/NB-IoT class
//! devices. This example runs the full client/server *protocol*
//! simulation (real per-device state machines, counted messages and
//! bytes) and compares measured traffic against the paper's closed-form
//! CFPU expressions.
//!
//! Run with: `cargo run --release --example communication_budget`

use ldp_ids::runner::{run_on_materialized, CollectorMode};
use ldp_ids::{MechanismConfig, MechanismKind};
use ldp_metrics::{cfpu_lba_lbd, cfpu_lbu, cfpu_lpa, cfpu_lpd, cfpu_lpu_lsp, Table};
use ldp_stream::{Dataset, MaterializedStream};

fn main() {
    // Small population: the client simulation drives every device.
    let dataset = Dataset::Lns {
        population: 5_000,
        len: 100,
        p0: 0.05,
        q_std: 0.0025,
    };
    let stream = MaterializedStream::from_dataset(&dataset, 31);
    let w = 20;
    let config = MechanismConfig::new(1.0, w, stream.domain().size(), stream.population());

    println!(
        "driving {} real client state machines for {} steps (w = {w})…\n",
        stream.population(),
        stream.len()
    );

    let mut table = Table::new(vec![
        "mechanism",
        "CFPU measured",
        "CFPU theory",
        "uplink KB",
        "KB/device",
    ]);
    for kind in MechanismKind::ALL {
        let mut mech = kind.build(&config).expect("valid configuration");
        let result = run_on_materialized(mech.as_mut(), &stream, CollectorMode::Client, 8);
        // Per-window publication count for the closed forms.
        let windows = stream.len() as f64 / w as f64;
        let m = (result.publications as f64 / windows).round() as u64;
        let theory = match kind {
            MechanismKind::Lbu => cfpu_lbu(),
            MechanismKind::Lsp | MechanismKind::Lpu => cfpu_lpu_lsp(w),
            MechanismKind::Lbd | MechanismKind::Lba => cfpu_lba_lbd(m, w),
            MechanismKind::Lpd => cfpu_lpd(m, w),
            MechanismKind::Lpa => cfpu_lpa(m, w),
        };
        let kb = result.stats.uplink_bytes as f64 / 1024.0;
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.4}", result.cfpu),
            format!("{:.4}", theory),
            format!("{:.1}", kb),
            format!("{:.3}", kb / stream.population() as f64),
        ]);
    }
    println!("{}", table.render());
    println!("population division sends ~w x fewer messages at the same epsilon;");
    println!("the adaptive variants (lpd/lpa) save further by skipping quiet steps.");
}
