//! Offline drop-in subset of `crossbeam`: scoped threads, delegated to
//! `std::thread::scope` (stable since 1.63, which post-dates crossbeam's
//! scoped-thread API — the workspace predates switching call sites).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Handle used to spawn more threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread; the closure receives the scope so it can
        /// spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing, non-`'static` threads can
    /// be spawned; all are joined before `scope` returns.
    ///
    /// Panic semantics differ slightly from crossbeam: a panicking child
    /// re-raises the panic here (via `std::thread::scope`) instead of
    /// materializing as `Err`, so callers' `.expect(..)` unwraps `Ok`
    /// in the success path and never observes the error path.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicU64::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let counter = AtomicU64::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                });
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        }

        #[test]
        #[should_panic]
        fn child_panics_propagate() {
            let _ = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }
    }
}
