//! Offline drop-in subset of `proptest`.
//!
//! Supports the slice of the API this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range, tuple and [`collection::vec`] strategies, [`any`], [`Just`],
//! the weighted [`prop_oneof!`] union, `prop_map`, and the
//! `prop_assert*` macros with [`TestCaseError`].
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed (derived from the test name) instead of
//! OS entropy, and failing inputs are *not* shrunk — the failing case's
//! number is reported and the original assertion message carries the
//! diagnostic. Case count defaults to [`ProptestConfig::DEFAULT_CASES`]
//! and honours the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// The default case count (overridable via `PROPTEST_CASES`).
    pub const DEFAULT_CASES: u32 = 64;

    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Self::DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A fixed value as a (degenerate) strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A weighted union of boxed alternatives, all producing the same value
/// type — what [`prop_oneof!`] expands to.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union over `options`; weights must not all be zero.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { options, total }
    }

    /// Box one alternative (a macro helper pinning the value type).
    pub fn boxed<S: Strategy<Value = T> + 'static>(strategy: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.options {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= *weight;
        }
        unreachable!("pick < total by construction")
    }
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Union::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Strategies drawing from explicit value sets.
pub mod sample {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy selecting uniformly from `options` (cloned up front).
    pub fn select<T: Clone>(options: &[T]) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select {
            options: options.to_vec(),
        }
    }

    /// The [`select`] strategy.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The [`any`] strategy.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types producible by [`any`].
pub trait Arbitrary {
    /// One arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Deterministic per-test RNG: tests rerun identically build to build.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Assert inside a property (returns `TestCaseError` instead of
/// panicking, so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0u64..100, v in proptest::collection::vec(0f64..1.0, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($config:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)* } => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut __pt_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut __pt_rejected: u32 = 0;
                let mut __pt_case: u32 = 0;
                while __pt_case < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __pt_rng);)*
                    let __pt_result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __pt_result {
                        ::core::result::Result::Ok(()) => { __pt_case += 1; }
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __pt_rejected += 1;
                            assert!(
                                __pt_rejected < config.cases * 16,
                                "too many rejected cases in {}", stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name), __pt_case, reason
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0u8..10, 2..6),
            w in crate::collection::vec(0u8..10, 4usize),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_is_accepted(b in any::<bool>()) {
            prop_assert!(matches!(b, true | false));
        }
    }

    proptest! {
        #[test]
        fn oneof_draws_every_weighted_arm(
            picks in crate::collection::vec(
                prop_oneof![
                    3 => (0u64..5, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 5 }),
                    1 => Just(99u64),
                ],
                200,
            )
        ) {
            prop_assert!(picks.iter().all(|&p| p < 10 || p == 99));
            // With weight 3:1 over 200 draws, both arms fire.
            prop_assert!(picks.iter().any(|&p| p < 10));
            prop_assert!(picks.contains(&99));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1u64..5).prop_map(|x| x * 10);
        let mut rng = crate::test_rng("map");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    // The nested `#[test]` is expansion detail: `inner` is invoked
    // directly below, never by the harness.
    #[allow(unnameable_test_items)]
    fn failures_panic_with_case_number() {
        proptest! {
            #[test]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
