//! Offline drop-in subset of `serde_json`: JSON text ⇄ the vendored
//! `serde` stub's `Value` data model.
//!
//! Output conventions match real `serde_json` where the workspace
//! depends on them: externally-tagged enums, 2-space pretty indentation,
//! shortest-round-trip float formatting (Rust's `{:?}`), non-finite
//! floats as `null`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse or render error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw byte position.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-7", "0.25", "1e-3"] {
            let v: Value = from_str::<Value>(text).unwrap();
            let back: Value = from_str::<Value>(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tünïcödé \\ end".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            (
                "b".into(),
                Value::Object(vec![("c".into(), Value::Bool(true))]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str::<Value>(&text).unwrap(), v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::U64(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn nonfinite_floats_write_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
