//! Offline drop-in subset of `parking_lot`: [`Mutex`]/[`RwLock`] with
//! the non-poisoning, `Result`-free locking API, backed by `std::sync`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poisoning is ignored, as in `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
