//! Seedable generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Not the upstream ChaCha12 `StdRng` — consumers here only require a
/// seedable, statistically strong, fast generator whose streams are
/// stable within this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start at the all-zero state.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn next_u32_varies() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, b);
    }
}
