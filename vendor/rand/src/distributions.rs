//! The distribution seam (`rand_distr` builds on this).

use crate::{unit_f32, unit_f64, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of each primitive: full-range integers,
/// unit-interval floats, fair-coin bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
