//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, a seedable [`rngs::StdRng`]
//! (xoshiro256** seeded through SplitMix64), the [`distributions`] seam
//! that `rand_distr` builds on, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: all consumers seed explicitly
//! (`StdRng::seed_from_u64`), so the only requirement on the generator is
//! statistical quality and stability *within this workspace* — the stream
//! does not need to match upstream `rand`'s ChaCha-based `StdRng`.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling for a range passed to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $gen:ident);*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $gen(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $gen(rng)
            }
        }
    )*};
}

float_sample_range!(f64, unit_f64; f32, unit_f32);

/// Uniform `u64` in `[0, bound)` by widening-multiply rejection
/// (unbiased; `bound = 0` means the full domain).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Lemire's method: multiply-shift with rejection of the biased zone.
    let mut m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits: uniform on [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0u64..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rngcore_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
