//! Offline drop-in subset of the `rand_distr` 0.4 API.
//!
//! Provides exactly the samplers the workspace uses — [`Binomial`],
//! [`Hypergeometric`], [`StandardNormal`] — as *exact* samplers:
//!
//! * `Binomial` uses CDF inversion for small means and Hörmann's BTRS
//!   transformed-rejection algorithm otherwise, so the paper's 10⁶-user
//!   aggregate draws stay O(1) per sample;
//! * `Hypergeometric` uses mode-seeded CDF inversion with a log-space
//!   pmf seed (cannot overflow, unlike upstream 0.4's factorial
//!   products — the corner `ldp_util::hypergeometric` documents);
//! * `StandardNormal` is a Box–Muller transform.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

mod binomial;
mod hypergeometric;

pub use binomial::{Binomial, BinomialError};
pub use hypergeometric::{Hypergeometric, HypergeometricError};

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; discard the paired variate to stay stateless.
        loop {
            let u1: f64 = rng.gen();
            if u1 > 0.0 {
                let u2: f64 = rng.gen();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

/// Shared log-gamma (Lanczos g = 7, n = 9) for exact pmf seeds.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z: f64 = StandardNormal.sample(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
    }
}
