//! Exact binomial sampling: CDF inversion for small means, Hörmann's
//! BTRS transformed rejection otherwise.

use crate::ln_gamma;
use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Parameter error for [`Binomial::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinomialError {
    /// `p` was outside `[0, 1]` or not finite.
    ProbabilityInvalid,
}

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binomial p must lie in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// The binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// A binomial distribution with `n` trials of success probability `p`.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(BinomialError::ProbabilityInvalid);
        }
        Ok(Binomial { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Sample the smaller tail and mirror, so p' <= 1/2.
        let flipped = p > 0.5;
        let q = if flipped { 1.0 - p } else { p };
        let np = n as f64 * q;
        let sample = if np < 10.0 {
            sample_inversion(rng, n, q)
        } else {
            sample_btrs(rng, n, q)
        };
        if flipped {
            n - sample
        } else {
            sample
        }
    }
}

/// CDF inversion via the pmf recurrence; expected O(np) steps.
fn sample_inversion<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    // P(X = 0) = q^n, computed in log space for tiny q^n.
    let mut pmf = (n as f64 * q.ln()).exp();
    let mut cdf = pmf;
    let mut x: u64 = 0;
    let u: f64 = rng.gen();
    while cdf < u && x < n {
        pmf *= s * (n - x) as f64 / (x + 1) as f64;
        cdf += pmf;
        x += 1;
    }
    x
}

/// Hörmann's BTRS algorithm (transformed rejection with squeeze);
/// requires `p <= 1/2` and `np >= 10`. Exact.
fn sample_btrs<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let stddev = (nf * p * q).sqrt();
    let b = 1.15 + 2.53 * stddev;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let r = p / q;
    let alpha = (2.83 + 5.1 / b) * stddev;
    let m = ((nf + 1.0) * p).floor();
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let mut v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + c).floor();
        if kf < 0.0 || kf > nf {
            continue;
        }
        if us >= 0.07 && v <= v_r {
            return kf as u64;
        }
        let k = kf;
        v = (v * alpha / (a / (us * us) + b)).ln();
        let upper = (m + 0.5) * ((m + 1.0) / (r * (nf - m + 1.0))).ln()
            + (nf + 1.0) * ((nf - m + 1.0) / (nf - k + 1.0)).ln()
            + (k + 0.5) * (r * (nf - k + 1.0) / (k + 1.0)).ln()
            + stirling_tail(m)
            + stirling_tail(nf - m)
            - stirling_tail(k)
            - stirling_tail(nf - k);
        if v <= upper {
            return k as u64;
        }
    }
}

/// `ln(k!) - [k ln k - k + 0.5 ln(2πk)]`, the Stirling correction.
fn stirling_tail(k: f64) -> f64 {
    // Tabulated for small k (accuracy matters most there), series above.
    const TABLE: [f64; 10] = [
        0.081_061_466_795_327_8,
        0.041_340_695_955_409_5,
        0.027_677_925_684_998_6,
        0.020_790_672_103_765_1,
        0.016_644_691_189_821_2,
        0.013_876_128_823_071_1,
        0.011_896_709_945_892_4,
        0.010_411_265_261_972_1,
        0.009_255_462_182_712_76,
        0.008_330_563_433_362_87,
    ];
    let kp1 = k + 1.0;
    if k < 10.0 {
        // Exact via log-gamma keeps the squeeze valid for any k.
        let idx = k as usize;
        if (k - idx as f64).abs() < 1e-9 {
            return TABLE[idx];
        }
        return ln_gamma(kp1) - (kp1 - 0.5) * kp1.ln() + kp1
            - 0.5 * (2.0 * std::f64::consts::PI).ln();
    }
    let inv = 1.0 / kp1;
    let inv2 = inv * inv;
    (1.0 / 12.0 - (1.0 / 360.0 - inv2 / 1260.0) * inv2) * inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(n: u64, p: f64, trials: u64, seed: u64) -> (f64, f64) {
        let dist = Binomial::new(n, p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..trials).map(|_| dist.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (trials - 1) as f64;
        (mean, var)
    }

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn small_mean_inversion_moments() {
        let (mean, var) = moments(100, 0.03, 40_000, 1);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 2.91).abs() < 0.15, "var {var}");
    }

    #[test]
    fn btrs_moments_large_n() {
        let (mean, var) = moments(1_000_000, 0.4, 20_000, 2);
        let (em, ev) = (400_000.0, 240_000.0);
        assert!((mean - em).abs() / em < 0.001, "mean {mean}");
        assert!((var - ev).abs() / ev < 0.05, "var {var}");
    }

    #[test]
    fn flipped_p_moments() {
        let (mean, var) = moments(10_000, 0.87, 20_000, 3);
        let (em, ev) = (8_700.0, 1_131.0);
        assert!((mean - em).abs() / em < 0.002, "mean {mean}");
        assert!((var - ev).abs() / ev < 0.05, "var {var}");
    }

    #[test]
    fn samples_stay_in_support() {
        let dist = Binomial::new(50, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(dist.sample(&mut rng) <= 50);
        }
    }

    #[test]
    fn stirling_tail_continuity() {
        // Table and series must agree where they meet.
        let series_at_10 = {
            let inv = 1.0 / 11.0;
            let inv2: f64 = inv * inv;
            (1.0 / 12.0 - (1.0 / 360.0 - inv2 / 1260.0) * inv2) * inv
        };
        let exact =
            ln_gamma(11.0) - 10.5 * 11.0f64.ln() + 11.0 - 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((series_at_10 - exact).abs() < 1e-8);
    }
}
