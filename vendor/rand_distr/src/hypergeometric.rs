//! Exact hypergeometric sampling by mode-anchored CDF inversion with a
//! log-space pmf seed.

use crate::ln_gamma;
use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Parameter error for [`Hypergeometric::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypergeometricError {
    /// `K > N` or `n > N`.
    OutOfRange,
}

impl std::fmt::Display for HypergeometricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hypergeometric requires K <= N and n <= N")
    }
}

impl std::error::Error for HypergeometricError {}

/// The hypergeometric distribution: successes in `n` draws without
/// replacement from a population of `N` containing `K` featured items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    total: u64,
    featured: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Distribution over draws from a population of `total_population_size`
    /// with `population_with_feature` featured items, `sample_size` draws.
    pub fn new(
        total_population_size: u64,
        population_with_feature: u64,
        sample_size: u64,
    ) -> Result<Self, HypergeometricError> {
        if population_with_feature > total_population_size || sample_size > total_population_size {
            return Err(HypergeometricError::OutOfRange);
        }
        Ok(Hypergeometric {
            total: total_population_size,
            featured: population_with_feature,
            draws: sample_size,
        })
    }
}

fn ln_choose(n: f64, k: f64) -> f64 {
    if k < 0.0 || k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

impl Distribution<u64> for Hypergeometric {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (nn, kk, n) = (self.total, self.featured, self.draws);
        let x_min = n.saturating_sub(nn - kk);
        let x_max = kk.min(n);
        if x_min == x_max {
            return x_min;
        }
        let (nf, kf, df) = (nn as f64, kk as f64, n as f64);
        // Inversion anchored at the mode, expanding outward in both
        // directions: expected work O(stddev), exact, and the log-space
        // pmf seed cannot overflow. (A plain walk from x_min would cost
        // O(mode − x_min) — prohibitive at the paper's 10⁶ populations.)
        let mode = (((df + 1.0) * (kf + 1.0) / (nf + 2.0)).floor() as u64).clamp(x_min, x_max);
        let ln_pm =
            ln_choose(kf, mode as f64) + ln_choose(nf - kf, df - mode as f64) - ln_choose(nf, df);
        let pmf_mode = ln_pm.exp();
        let mut acc = pmf_mode;
        let u: f64 = rng.gen();
        if u < acc {
            return mode;
        }
        let (mut up_x, mut up_pmf) = (mode, pmf_mode);
        let (mut down_x, mut down_pmf) = (mode, pmf_mode);
        loop {
            if up_x < x_max {
                let xf = up_x as f64;
                up_pmf *= ((kf - xf) * (df - xf)) / ((xf + 1.0) * (nf - kf - df + xf + 1.0));
                up_x += 1;
                acc += up_pmf;
                if u < acc {
                    return up_x;
                }
            }
            if down_x > x_min {
                let xf = down_x as f64;
                down_pmf *= (xf * (nf - kf - df + xf)) / ((kf - xf + 1.0) * (df - xf + 1.0));
                down_x -= 1;
                acc += down_pmf;
                if u < acc {
                    return down_x;
                }
            }
            if up_x == x_max && down_x == x_min {
                // Floating residue left `acc` fractionally below `u` at
                // the end of the support; the mass sits in the tails.
                return up_x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_inconsistent_parameters() {
        assert!(Hypergeometric::new(10, 11, 5).is_err());
        assert!(Hypergeometric::new(10, 5, 11).is_err());
        assert!(Hypergeometric::new(10, 10, 10).is_ok());
    }

    #[test]
    fn moments_match_theory() {
        let (nn, kk, n) = (1000u64, 300u64, 100u64);
        let dist = Hypergeometric::new(nn, kk, n).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 40_000;
        let samples: Vec<f64> = (0..trials).map(|_| dist.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let expected_mean = n as f64 * kk as f64 / nn as f64; // 30
        assert!((mean - expected_mean).abs() < 0.15, "mean {mean}");
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (trials - 1) as f64;
        let p = kk as f64 / nn as f64;
        let fpc = (nn - n) as f64 / (nn - 1) as f64;
        let expected_var = n as f64 * p * (1.0 - p) * fpc; // ≈ 18.9
        assert!(
            (var - expected_var).abs() / expected_var < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn support_bounds_hold() {
        let dist = Hypergeometric::new(50, 30, 40).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5_000 {
            let x = dist.sample(&mut rng);
            assert!((20..=30).contains(&x), "x = {x} outside [20, 30]");
        }
    }

    #[test]
    fn huge_population_does_not_overflow() {
        // The parameter corner that broke upstream 0.4's factorial
        // products must sample fine here.
        let dist = Hypergeometric::new(37_500, 3_732, 78).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..4_000)
            .map(|_| dist.sample(&mut rng) as f64)
            .sum::<f64>()
            / 4_000.0;
        assert!((mean - 7.76).abs() < 0.3, "mean {mean}");
    }
}
