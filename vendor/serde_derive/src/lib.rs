//! Offline drop-in subset of `serde_derive`.
//!
//! Generates [`serde::Serialize`]/[`serde::Deserialize`] impls against
//! the vendored `serde` stub's `Value` data model. No `syn`/`quote`
//! (also unavailable offline): the input item is parsed directly from
//! the token stream, which is enough for the shapes this workspace
//! derives — non-generic braced structs and enums with unit, newtype,
//! tuple and struct variants. Enum representation is externally tagged,
//! matching real serde's default, so emitted JSON stays compatible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub does not support generic types ({name})");
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for {name}, found {other}"),
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Field names of a `{ name: Type, ... }` body. Types are *not* parsed —
/// the generated code lets inference pick the right `Deserialize` impl.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(field);
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        // Consume the type: everything up to a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{ty}::{name} => ::serde::Value::Str(::std::string::String::from(\"{name}\")),")
        }
        VariantKind::Tuple(1) => format!(
            "{ty}::{name}(x0) => ::serde::Value::Object(vec![(\
             ::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value(x0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{name}({}) => ::serde::Value::Object(vec![(\
                 ::std::string::String::from(\"{name}\"), \
                 ::serde::Value::Array(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{name} {{ {binds} }} => ::serde::Value::Object(vec![(\
                 ::std::string::String::from(\"{name}\"), \
                 ::serde::Value::Object(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(entries, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object for struct {name}\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| de_arm(name, v))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 tagged => {{\n\
                 let (tag, payload) = ::serde::variant(tagged, \"{name}\")?;\n\
                 let _ = &payload;\n\
                 match tag {{\n\
                 {arms}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}",
                units = unit_arms.join("\n"),
                arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}

fn de_arm(ty: &str, v: &Variant) -> String {
    let name = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled in the string arm"),
        VariantKind::Tuple(1) => {
            format!("\"{name}\" => Ok({ty}::{name}(::serde::Deserialize::from_value(payload)?)),")
        }
        VariantKind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "\"{name}\" => {{\n\
                 let items = payload.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array for {ty}::{name}\", payload))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {ty}::{name}, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok({ty}::{name}({}))\n\
                 }},",
                elems.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(entries, \"{f}\", \"{ty}::{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "\"{name}\" => {{\n\
                 let entries = payload.as_object().ok_or_else(|| \
                 ::serde::Error::expected(\"object for {ty}::{name}\", payload))?;\n\
                 Ok({ty}::{name} {{ {} }})\n\
                 }},",
                inits.join(", ")
            )
        }
    }
}
