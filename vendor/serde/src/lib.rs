//! Offline drop-in subset of `serde`.
//!
//! The real serde decouples data structures from formats through a
//! visitor-based data model. This vendored stand-in collapses that
//! generality to the one format the workspace uses (JSON via the sibling
//! `serde_json` stub): [`Serialize`] renders into an owned [`Value`]
//! tree, [`Deserialize`] rebuilds from one. The derive macros (from the
//! sibling `serde_derive`) generate the same externally-tagged enum
//! representation real serde uses, so serialized artifacts stay
//! compatible with upstream tooling.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model shared by `Serialize`/`Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved for stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, got Y" helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error {
            message: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type renderable into the [`Value`] data model.
pub trait Serialize {
    /// Render into the data model.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- derive-support helpers (used by generated code) ----

/// Look up a struct field in an object (derive support).
pub fn get_field<'a>(
    entries: &'a [(String, Value)],
    key: &str,
    ty: &str,
) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` for {ty}")))
}

/// Split an externally-tagged enum value into `(tag, payload)`
/// (derive support).
pub fn variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    match v {
        Value::Object(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(Error::custom(format!(
            "expected single-key object for enum {ty}, got {}",
            other.kind()
        ))),
    }
}

// ---- primitive impls ----

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of i64 range")))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Real serde_json writes non-finite floats as null; accept
            // the round-trip.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            Option::<u8>::from_value(&Option::<u8>::None.to_value()).unwrap(),
            None
        );
    }

    #[test]
    fn numeric_cross_acceptance() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-7)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn errors_name_the_problem() {
        let e = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.to_string().contains("unsigned integer"));
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert!(get_field(&entries, "b", "T").is_err());
        assert!(variant(&Value::Null, "E").is_err());
    }
}
