//! Offline drop-in subset of `criterion`.
//!
//! Keeps the workspace's benchmark targets compiling and runnable with
//! no external dependencies: each benchmark is timed with a simple
//! warmup + fixed-iteration measurement and reported as mean ns/iter on
//! stdout. No statistical analysis, HTML reports, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark id: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Time `routine`, storing mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: grow the batch until it runs ≥ 20 ms.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(20) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        self.mean_ns = elapsed.as_nanos() as f64 / batch as f64;
        self.iters_done = batch;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters_done: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters_done: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
    }

    /// Finish the group (reporting is incremental; kept for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / (b.mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.0} B/s", n as f64 / (b.mean_ns * 1e-9))
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.1} ns/iter ({} iters){rate}",
            self.name, b.mean_ns, b.iters_done
        );
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let mut group = self.benchmark_group(name);
        group.bench_function("", f);
        group.finish();
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
